// Enhanced Linux Kernel Packet Generator (Chapter 4, Appendix A.2).
//
// Generates UDP-in-IPv4-in-Ethernet frames onto a link, either at a target
// data rate (via per-packet pacing) or as fast as the generating NIC
// allows.  The thesis's enhancement — drawing each packet's size from a
// two-stage packet size distribution instead of a fixed size — is
// implemented via dist::TwoStageDist and activated with the
// PKTSIZE_REAL flag, exactly like the original /proc interface (which
// pgset.cpp parses).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "capbench/dist/two_stage_dist.hpp"
#include "capbench/net/arena.hpp"
#include "capbench/net/headers.hpp"
#include "capbench/net/link.hpp"
#include "capbench/sim/random.hpp"
#include "capbench/sim/simulator.hpp"

namespace capbench::obs {
class Counter;
class Registry;
}

namespace capbench::pktgen {

/// Generating NIC model: the fixed per-packet transmit overhead that keeps
/// real cards below theoretical line speed.  Calibrated to the rates the
/// thesis measured with 1500-byte packets (Section 4.1.3): Syskonnect
/// 938 Mbit/s, Netgear 930 Mbit/s, Intel 890 Mbit/s.
struct GenNicModel {
    std::string name = "Syskonnect SK-98xx";
    double per_packet_overhead_ns = 490.0;

    static const GenNicModel& syskonnect();  // 938 Mbit/s @ 1500 B
    static const GenNicModel& netgear();     // 930 Mbit/s @ 1500 B
    static const GenNicModel& intel();       // 890 Mbit/s @ 1500 B
};

struct GenConfig {
    std::uint64_t count = 1'000'000;   // packets per run (thesis default)
    std::uint32_t packet_size = 1500;  // IP packet size when no distribution
    /// Target frame-data rate in Mbit/s; 0 = as fast as possible.
    double rate_mbps = 0.0;
    /// Extra inter-packet gap (the pktgen `delay` command), nanoseconds.
    std::int64_t delay_ns = 0;
    /// Speed of the attached link in Gbit/s (pacing floor); 10 for the
    /// Section 7.2 10-Gigabit scenario.
    double link_gbps = 1.0;
    /// Packet size distribution; used when `use_dist` (flag PKTSIZE_REAL).
    std::optional<dist::TwoStageDist> size_dist;
    bool use_dist = false;
    /// Generate real frame bytes (needed for filter experiments and pcap
    /// output); otherwise synthetic size-only packets.
    bool full_bytes = false;
    std::uint64_t seed = 1;

    /// Square-wave rate modulation (the overload-pulse workload): from
    /// generation start, during the first `burst_duration_ns` of every
    /// `burst_period_ns` the target rate is multiplied by
    /// `burst_multiplier` (still floored by the NIC/link pacing gap).
    /// period 0 (default) = steady rate, byte-identical to classic pacing.
    std::int64_t burst_period_ns = 0;
    std::int64_t burst_duration_ns = 0;
    double burst_multiplier = 10.0;

    /// Per-packet flow identity: packets cycle deterministically through
    /// this many distinct UDP 4-tuples (flow id = packet id % flow_count),
    /// each derived from the base addressing below.  1 = the classic
    /// single-flow traffic (the tuple is exactly the base addressing).
    /// Every packet is stamped with its tuple — full-bytes mode also
    /// encodes it in the headers — which is what RSS steering hashes.
    std::uint32_t flow_count = 1;

    // Addressing (defaults from the Figure 6.5 measurement description).
    net::MacAddr src_mac = net::MacAddr::parse("00:00:00:00:00:00");
    /// Cycle the source MAC through this many consecutive addresses
    /// (0 or 1 = no cycling; the thesis cycles through 3).
    std::uint32_t src_mac_count = 3;
    net::MacAddr dst_mac = net::MacAddr::parse("00:0e:0c:01:02:03");
    net::Ipv4Addr src_ip = net::Ipv4Addr::parse("192.168.10.100");
    net::Ipv4Addr dst_ip = net::Ipv4Addr::parse("192.168.10.12");
    std::uint16_t udp_src_port = 9;
    std::uint16_t udp_dst_port = 9;
};

struct GenStats {
    std::uint64_t packets_sent = 0;
    std::uint64_t bytes_sent = 0;  // IP packet bytes (the thesis's data-rate unit)
    sim::SimTime started_at{};
    sim::SimTime finished_at{};

    [[nodiscard]] double elapsed_seconds() const {
        return (finished_at - started_at).seconds();
    }
    [[nodiscard]] double achieved_mbps() const {
        const double s = elapsed_seconds();
        return s > 0 ? static_cast<double>(bytes_sent) * 8.0 / s / 1e6 : 0.0;
    }
    [[nodiscard]] double achieved_pps() const {
        const double s = elapsed_seconds();
        return s > 0 ? static_cast<double>(packets_sent) / s : 0.0;
    }
};

class Generator {
public:
    /// `arena` supplies recycled packet nodes and payload buffers; when
    /// omitted the generator creates a private one.
    Generator(sim::Simulator& sim, net::Link& link, GenNicModel nic, GenConfig config,
              std::shared_ptr<net::PacketArena> arena = nullptr);

    /// Applies one pgset command line (Appendix A.2.2); see pgset.cpp for
    /// the command set.  Throws std::runtime_error on unknown commands and
    /// on activating PKTSIZE_REAL before the distribution is complete.
    void apply_pgset(const std::string& line);

    /// Schedules generation starting at `at`; `on_done` fires after the
    /// last packet has left the wire.
    void start(sim::SimTime at, std::function<void()> on_done = {});

    [[nodiscard]] const GenStats& stats() const { return stats_; }
    [[nodiscard]] const GenConfig& config() const { return config_; }
    [[nodiscard]] GenConfig& config() { return config_; }

    /// The size the next packet would get (exposed for tests).
    [[nodiscard]] std::uint32_t draw_size();

    /// The flow tuple packet `id` is stamped with (exposed for tests).
    [[nodiscard]] net::FlowTuple flow_for(std::uint64_t id) const;

    /// Registers `pktgen.packets` / `pktgen.bytes` counters; increments are
    /// branch-guarded so unobserved runs pay nothing.
    void register_metrics(obs::Registry& registry);

private:
    void send_next();
    [[nodiscard]] net::PacketPtr build_packet(std::uint32_t ip_size);

    sim::Simulator* sim_;
    net::Link* link_;
    std::shared_ptr<net::PacketArena> arena_;
    GenNicModel nic_;
    GenConfig config_;
    sim::Rng rng_;
    GenStats stats_;
    obs::Counter* obs_packets_ = nullptr;
    obs::Counter* obs_bytes_ = nullptr;
    std::function<void()> on_done_;
    std::uint64_t next_id_ = 0;
    sim::SimTime pace_next_{};
    /// Distribution input in progress between a `dist` header and its last
    /// outl/hist line (owned by pgset.cpp).
    std::shared_ptr<void> pending_dist_;
};

}  // namespace capbench::pktgen
