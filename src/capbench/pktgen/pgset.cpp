// pgset command parsing: the /proc control interface of the (enhanced)
// Linux Kernel Packet Generator (Appendix A.2.2).
//
// Supported commands:
//   count N                      packets per run
//   pkt_size N                   fixed IP packet size
//   delay N                      extra inter-packet gap in nanoseconds
//   dst A.B.C.D / src A.B.C.D    IP addresses
//   dst_mac M / src_mac M        Ethernet addresses
//   src_mac_count N              cycle the source MAC over N addresses
//   udp_src_port N / udp_dst_port N
//   dist <prec> <binw> <max> <n_outl> <n_hist>   begin distribution input
//   outl <size> <cells>          stage-1 entry (n_outl lines)
//   hist <size> <cells>          stage-2 entry (n_hist lines)
//   flag PKTSIZE_REAL            activate the distribution (requires
//                                DIST_READY, i.e. all entries entered)
#include "capbench/pktgen/pktgen.hpp"

#include <sstream>
#include <stdexcept>

namespace capbench::pktgen {

namespace {

/// Distribution input in progress; lives in the generator between `dist`
/// and the final outl/hist line.
struct PendingDist {
    dist::TwoStageParams params;
    std::size_t want_outl = 0;
    std::size_t want_hist = 0;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> outliers;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> bins;

    [[nodiscard]] bool complete() const {
        return outliers.size() == want_outl && bins.size() == want_hist;
    }
};

}  // namespace

void Generator::apply_pgset(const std::string& line) {
    // Accept pgset "..." wrappers as produced by createDist -s.
    std::string cmd_line = line;
    if (const auto open = line.find('"'); open != std::string::npos) {
        const auto close = line.rfind('"');
        if (close > open) cmd_line = line.substr(open + 1, close - open - 1);
    }
    std::istringstream ss{cmd_line};
    std::string cmd;
    if (!(ss >> cmd)) throw std::runtime_error("pgset: empty command");

    const auto need_u64 = [&](const char* what) {
        std::uint64_t v = 0;
        if (!(ss >> v)) throw std::runtime_error(std::string("pgset: expected number for ") + what);
        return v;
    };
    const auto need_str = [&](const char* what) {
        std::string v;
        if (!(ss >> v)) throw std::runtime_error(std::string("pgset: expected value for ") + what);
        return v;
    };

    if (cmd == "count") {
        config_.count = need_u64("count");
    } else if (cmd == "pkt_size") {
        config_.packet_size = static_cast<std::uint32_t>(need_u64("pkt_size"));
    } else if (cmd == "delay") {
        config_.delay_ns = static_cast<std::int64_t>(need_u64("delay"));
    } else if (cmd == "dst") {
        config_.dst_ip = net::Ipv4Addr::parse(need_str("dst"));
    } else if (cmd == "src") {
        config_.src_ip = net::Ipv4Addr::parse(need_str("src"));
    } else if (cmd == "dst_mac") {
        config_.dst_mac = net::MacAddr::parse(need_str("dst_mac"));
    } else if (cmd == "src_mac") {
        config_.src_mac = net::MacAddr::parse(need_str("src_mac"));
    } else if (cmd == "src_mac_count") {
        config_.src_mac_count = static_cast<std::uint32_t>(need_u64("src_mac_count"));
    } else if (cmd == "udp_src_port") {
        config_.udp_src_port = static_cast<std::uint16_t>(need_u64("udp_src_port"));
    } else if (cmd == "udp_dst_port") {
        config_.udp_dst_port = static_cast<std::uint16_t>(need_u64("udp_dst_port"));
    } else if (cmd == "dist") {
        PendingDist pending;
        pending.params.precision = static_cast<std::uint32_t>(need_u64("precision"));
        pending.params.bin_size = static_cast<std::uint32_t>(need_u64("bin width"));
        pending.params.max_size = static_cast<std::uint32_t>(need_u64("max size"));
        pending.want_outl = need_u64("outlier count");
        pending.want_hist = need_u64("bin count");
        pending_dist_ = std::make_shared<PendingDist>(std::move(pending));
        config_.size_dist.reset();
        config_.use_dist = false;
    } else if (cmd == "outl" || cmd == "hist") {
        if (!pending_dist_)
            throw std::runtime_error("pgset: " + cmd + " before dist header");
        auto& pending = *std::static_pointer_cast<PendingDist>(pending_dist_);
        const auto size = static_cast<std::uint32_t>(need_u64("size"));
        const auto cells = static_cast<std::uint32_t>(need_u64("cells"));
        auto& list = cmd == "outl" ? pending.outliers : pending.bins;
        auto& want = cmd == "outl" ? pending.want_outl : pending.want_hist;
        if (list.size() >= want)
            throw std::runtime_error("pgset: more " + cmd + " lines than announced");
        list.emplace_back(size, cells);
        if (pending.complete()) {
            // DIST_READY: build the sampling arrays (calculate_ra_arrays()).
            config_.size_dist.emplace(pending.params, pending.outliers, pending.bins);
        }
    } else if (cmd == "flag") {
        const auto flag = need_str("flag");
        if (flag == "PKTSIZE_REAL") {
            if (!config_.size_dist)
                throw std::runtime_error(
                    "pgset: flag PKTSIZE_REAL requires a complete distribution (DIST_READY)");
            config_.use_dist = true;
        } else {
            throw std::runtime_error("pgset: unknown flag " + flag);
        }
    } else {
        throw std::runtime_error("pgset: unknown command " + cmd);
    }
}

}  // namespace capbench::pktgen
