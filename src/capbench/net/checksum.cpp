#include "capbench/net/checksum.hpp"

namespace capbench::net {

namespace {

std::uint32_t raw_sum(std::span<const std::byte> data) {
    std::uint32_t sum = 0;
    std::size_t i = 0;
    for (; i + 1 < data.size(); i += 2) {
        sum += static_cast<std::uint32_t>((std::to_integer<std::uint32_t>(data[i]) << 8) |
                                          std::to_integer<std::uint32_t>(data[i + 1]));
    }
    if (i < data.size()) sum += std::to_integer<std::uint32_t>(data[i]) << 8;
    while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
    return sum;
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::byte> data) {
    return static_cast<std::uint16_t>(~raw_sum(data) & 0xFFFF);
}

bool checksum_ok(std::span<const std::byte> data) {
    return raw_sum(data) == 0xFFFF;
}

}  // namespace capbench::net
