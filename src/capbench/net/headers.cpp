#include "capbench/net/headers.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

#include "capbench/net/checksum.hpp"

namespace capbench::net {

namespace {

int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

}  // namespace

std::uint16_t load_be16(std::span<const std::byte> in, std::size_t off) {
    if (off + 2 > in.size()) throw std::out_of_range("load_be16: offset out of range");
    return static_cast<std::uint16_t>((std::to_integer<std::uint16_t>(in[off]) << 8) |
                                      std::to_integer<std::uint16_t>(in[off + 1]));
}

std::uint32_t load_be32(std::span<const std::byte> in, std::size_t off) {
    if (off + 4 > in.size()) throw std::out_of_range("load_be32: offset out of range");
    return (std::to_integer<std::uint32_t>(in[off]) << 24) |
           (std::to_integer<std::uint32_t>(in[off + 1]) << 16) |
           (std::to_integer<std::uint32_t>(in[off + 2]) << 8) |
           std::to_integer<std::uint32_t>(in[off + 3]);
}

void store_be16(std::span<std::byte> out, std::size_t off, std::uint16_t v) {
    if (off + 2 > out.size()) throw std::out_of_range("store_be16: offset out of range");
    out[off] = static_cast<std::byte>(v >> 8);
    out[off + 1] = static_cast<std::byte>(v & 0xFF);
}

void store_be32(std::span<std::byte> out, std::size_t off, std::uint32_t v) {
    if (off + 4 > out.size()) throw std::out_of_range("store_be32: offset out of range");
    out[off] = static_cast<std::byte>(v >> 24);
    out[off + 1] = static_cast<std::byte>((v >> 16) & 0xFF);
    out[off + 2] = static_cast<std::byte>((v >> 8) & 0xFF);
    out[off + 3] = static_cast<std::byte>(v & 0xFF);
}

MacAddr MacAddr::parse(const std::string& text) {
    std::array<std::uint8_t, 6> octets{};
    std::size_t pos = 0;
    for (std::size_t i = 0; i < 6; ++i) {
        if (pos + 2 > text.size()) throw std::invalid_argument("MacAddr::parse: too short: " + text);
        const int hi = hex_digit(text[pos]);
        const int lo = hex_digit(text[pos + 1]);
        if (hi < 0 || lo < 0) throw std::invalid_argument("MacAddr::parse: bad hex: " + text);
        octets[i] = static_cast<std::uint8_t>(hi * 16 + lo);
        pos += 2;
        if (i < 5) {
            if (pos >= text.size() || text[pos] != ':')
                throw std::invalid_argument("MacAddr::parse: expected ':': " + text);
            ++pos;
        }
    }
    if (pos != text.size()) throw std::invalid_argument("MacAddr::parse: trailing junk: " + text);
    return MacAddr{octets};
}

std::string MacAddr::to_string() const {
    char buf[18];
    std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0], octets_[1],
                  octets_[2], octets_[3], octets_[4], octets_[5]);
    return buf;
}

MacAddr MacAddr::plus(std::uint64_t n) const {
    std::uint64_t v = 0;
    for (const auto o : octets_) v = (v << 8) | o;
    v = (v + n) & 0xFFFFFFFFFFFFULL;
    std::array<std::uint8_t, 6> octets{};
    for (int i = 5; i >= 0; --i) {
        octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xFF);
        v >>= 8;
    }
    return MacAddr{octets};
}

Ipv4Addr Ipv4Addr::parse(const std::string& text) {
    std::uint32_t value = 0;
    const char* p = text.data();
    const char* end = text.data() + text.size();
    for (int i = 0; i < 4; ++i) {
        unsigned octet = 0;
        auto [next, ec] = std::from_chars(p, end, octet);
        if (ec != std::errc{} || octet > 255 || next == p)
            throw std::invalid_argument("Ipv4Addr::parse: bad octet: " + text);
        value = (value << 8) | octet;
        p = next;
        if (i < 3) {
            if (p >= end || *p != '.')
                throw std::invalid_argument("Ipv4Addr::parse: expected '.': " + text);
            ++p;
        }
    }
    if (p != end) throw std::invalid_argument("Ipv4Addr::parse: trailing junk: " + text);
    return Ipv4Addr{value};
}

std::string Ipv4Addr::to_string() const {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xFF, (value_ >> 16) & 0xFF,
                  (value_ >> 8) & 0xFF, value_ & 0xFF);
    return buf;
}

void EthernetHeader::encode(std::span<std::byte> out) const {
    if (out.size() < kEthernetHeaderLen)
        throw std::invalid_argument("EthernetHeader::encode: buffer too small");
    for (std::size_t i = 0; i < 6; ++i) out[i] = static_cast<std::byte>(dst.octets()[i]);
    for (std::size_t i = 0; i < 6; ++i) out[6 + i] = static_cast<std::byte>(src.octets()[i]);
    store_be16(out, 12, ether_type);
}

EthernetHeader EthernetHeader::decode(std::span<const std::byte> in) {
    if (in.size() < kEthernetHeaderLen)
        throw std::invalid_argument("EthernetHeader::decode: buffer too small");
    EthernetHeader h;
    std::array<std::uint8_t, 6> dst{};
    std::array<std::uint8_t, 6> src{};
    for (std::size_t i = 0; i < 6; ++i) dst[i] = std::to_integer<std::uint8_t>(in[i]);
    for (std::size_t i = 0; i < 6; ++i) src[i] = std::to_integer<std::uint8_t>(in[6 + i]);
    h.dst = MacAddr{dst};
    h.src = MacAddr{src};
    h.ether_type = load_be16(in, 12);
    return h;
}

void Ipv4Header::encode(std::span<std::byte> out) const {
    if (out.size() < kIpv4MinHeaderLen)
        throw std::invalid_argument("Ipv4Header::encode: buffer too small");
    out[0] = static_cast<std::byte>(0x45);  // version 4, IHL 5
    out[1] = static_cast<std::byte>(tos);
    store_be16(out, 2, total_length);
    store_be16(out, 4, identification);
    store_be16(out, 6, flags_fragment);
    out[8] = static_cast<std::byte>(ttl);
    out[9] = static_cast<std::byte>(protocol);
    store_be16(out, 10, 0);  // checksum placeholder
    store_be32(out, 12, src.value());
    store_be32(out, 16, dst.value());
    const std::uint16_t sum = internet_checksum(out.first(kIpv4MinHeaderLen));
    store_be16(out, 10, sum);
}

Ipv4Header Ipv4Header::decode(std::span<const std::byte> in) {
    if (in.size() < kIpv4MinHeaderLen)
        throw std::invalid_argument("Ipv4Header::decode: buffer too small");
    const auto version_ihl = std::to_integer<std::uint8_t>(in[0]);
    if ((version_ihl >> 4) != 4) throw std::invalid_argument("Ipv4Header::decode: not IPv4");
    Ipv4Header h;
    h.tos = std::to_integer<std::uint8_t>(in[1]);
    h.total_length = load_be16(in, 2);
    h.identification = load_be16(in, 4);
    h.flags_fragment = load_be16(in, 6);
    h.ttl = std::to_integer<std::uint8_t>(in[8]);
    h.protocol = std::to_integer<std::uint8_t>(in[9]);
    h.checksum = load_be16(in, 10);
    h.src = Ipv4Addr{load_be32(in, 12)};
    h.dst = Ipv4Addr{load_be32(in, 16)};
    return h;
}

void UdpHeader::encode(std::span<std::byte> out) const {
    if (out.size() < kUdpHeaderLen)
        throw std::invalid_argument("UdpHeader::encode: buffer too small");
    store_be16(out, 0, src_port);
    store_be16(out, 2, dst_port);
    store_be16(out, 4, length);
    store_be16(out, 6, checksum);
}

UdpHeader UdpHeader::decode(std::span<const std::byte> in) {
    if (in.size() < kUdpHeaderLen)
        throw std::invalid_argument("UdpHeader::decode: buffer too small");
    UdpHeader h;
    h.src_port = load_be16(in, 0);
    h.dst_port = load_be16(in, 2);
    h.length = load_be16(in, 4);
    h.checksum = load_be16(in, 6);
    return h;
}

}  // namespace capbench::net
