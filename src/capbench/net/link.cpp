#include "capbench/net/link.hpp"

#include <algorithm>

namespace capbench::net {

sim::SimTime Link::transmit(PacketPtr packet) {
    const sim::SimTime start = std::max(sim_->now(), busy_until_);
    const sim::SimTime done = start + wire_time_at(packet->frame_len(), gbps_);
    busy_until_ = done;
    ++frames_sent_;
    sim_->schedule_at(done, [this, packet = std::move(packet)] {
        for (auto* sink : sinks_) sink->on_frame(packet);
    });
    return done;
}

}  // namespace capbench::net
