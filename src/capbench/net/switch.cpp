#include "capbench/net/switch.hpp"

namespace capbench::net {

}  // namespace capbench::net
