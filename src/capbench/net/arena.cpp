#include "capbench/net/arena.hpp"

namespace capbench::net {

PacketArena::~PacketArena() {
    // All packets are gone by now (each one's control block holds a
    // shared_ptr to this arena), so every node and payload is back on its
    // freelist and can be returned to the system.
    while (free_nodes_ != nullptr) {
        FreeNode* next = free_nodes_->next;
        ::operator delete(static_cast<void*>(free_nodes_));
        free_nodes_ = next;
    }
    for (std::byte* p : free_payloads_) ::operator delete(static_cast<void*>(p));
}

std::shared_ptr<Packet> PacketArena::make_synthetic(std::uint64_t id, std::uint32_t frame_len,
                                                    sim::SimTime sent_at) {
    return std::allocate_shared<Packet>(ArenaNodeAlloc<Packet>(shared_from_this()), id,
                                        frame_len, sent_at);
}

std::shared_ptr<Packet> PacketArena::make_full(std::uint64_t id, std::uint32_t frame_len,
                                               sim::SimTime sent_at) {
    if (frame_len > kPayloadCapacity) {
        // Oversized frame: fall back to a packet-owned payload vector.
        ++stats_.oversize_payloads;
        return std::allocate_shared<Packet>(ArenaNodeAlloc<Packet>(shared_from_this()), id,
                                            std::vector<std::byte>(frame_len), sent_at);
    }
    std::byte* payload = acquire_payload();
    return std::allocate_shared<Packet>(ArenaNodeAlloc<Packet>(shared_from_this()), id,
                                        frame_len, sent_at, payload, this);
}

void* PacketArena::acquire_node(std::size_t bytes) {
    if (node_size_ == 0) node_size_ = bytes;
    if (bytes != node_size_ || free_nodes_ == nullptr) {
        // First allocation, growth, or (never in practice) a foreign node
        // size: take it from the system.  Foreign sizes are also released
        // back to the system in release_node.
        ++stats_.node_allocs;
        return ::operator new(bytes);
    }
    FreeNode* node = free_nodes_;
    free_nodes_ = node->next;
    ++stats_.node_reuses;
    return static_cast<void*>(node);
}

void PacketArena::release_node(void* p, std::size_t bytes) noexcept {
    if (bytes != node_size_ || bytes < sizeof(FreeNode)) {
        ::operator delete(p);
        return;
    }
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_nodes_;
    free_nodes_ = node;
}

std::byte* PacketArena::acquire_payload() {
    if (free_payloads_.empty()) {
        ++stats_.payload_allocs;
        return static_cast<std::byte*>(::operator new(kPayloadCapacity));
    }
    std::byte* p = free_payloads_.back();
    free_payloads_.pop_back();
    ++stats_.payload_reuses;
    return p;
}

void PacketArena::release_payload(std::byte* p) noexcept {
    free_payloads_.push_back(p);
}

}  // namespace capbench::net
