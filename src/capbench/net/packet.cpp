#include "capbench/net/packet.hpp"

#include "capbench/net/arena.hpp"

namespace capbench::net {

Packet::~Packet() {
    // The arena outlives every packet it produced: the shared_ptr control
    // block (destroyed strictly after this object) owns a reference to it.
    if (arena_ != nullptr) arena_->release_payload(data_);
}

}  // namespace capbench::net
