#include "capbench/net/packet.hpp"

// Packet is header-only; this translation unit anchors the FrameSink vtable.

namespace capbench::net {

}  // namespace capbench::net
