// Monitoring switch (Cisco C3500XL stand-in, Figure 3.1).
//
// The generator feeds one port; a monitor port mirrors the traffic towards
// the optical splitter.  The measurement cycle reads the SNMP-style packet
// and byte counters before and after each run to learn exactly how many
// packets were put on the fiber (Section 3.4 steps 2 and 4).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "capbench/net/packet.hpp"

namespace capbench::net {

struct PortCounters {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
};

class MonitorSwitch : public FrameSink {
public:
    /// Attaches the sink reached through the monitor (mirror) port.
    void attach_monitor(FrameSink& sink) { monitor_sinks_.push_back(&sink); }

    void on_frame(const PacketPtr& packet) override {
        ingress_.packets += 1;
        ingress_.bytes += packet->frame_len();
        for (auto* sink : monitor_sinks_) {
            egress_.packets += 1;
            egress_.bytes += packet->frame_len();
            sink->on_frame(packet);
        }
    }

    /// SNMP-style counter read for the generator-facing port.
    [[nodiscard]] const PortCounters& ingress_counters() const { return ingress_; }

    /// SNMP-style counter read for the monitor port (per attached sink sum).
    [[nodiscard]] const PortCounters& egress_counters() const { return egress_; }

private:
    std::vector<FrameSink*> monitor_sinks_;
    PortCounters ingress_;
    PortCounters egress_;
};

}  // namespace capbench::net
