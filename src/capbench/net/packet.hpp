// Packet representation.
//
// Packets flow from the generator through the switch and splitter into the
// NICs of the systems under test.  Two modes are supported:
//
//  * full mode: the packet carries its frame bytes (needed whenever a BPF
//    filter inspects packet contents or packets are written to pcap files);
//  * synthetic mode: only the sizes are carried (fast path for the pure
//    capture-rate experiments where contents are irrelevant; the thesis
//    notes "type and content of the packets have no influence on the
//    process of capturing", Section 3.2).
//
// Packets are shared immutably (like cloned skbs): the splitter hands the
// same underlying packet to all four sniffers.  On the hot path both the
// control block and the payload come from a PacketArena (see arena.hpp) and
// are recycled through freelists, so pktgen -> splitter -> NICs runs without
// malloc churn; the plain constructors below remain for tests and tools.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "capbench/sim/time.hpp"

namespace capbench::net {

class PacketArena;

/// Synthetic flow identity (a UDP/TCP 4-tuple) stamped on every generated
/// packet.  Both packet modes carry it: full-mode packets also encode it in
/// their headers, while synthetic packets have no bytes at all — the tuple
/// is what lets a multi-queue NIC compute an RSS hash without parsing.
/// Addresses and ports are in host byte order.
struct FlowTuple {
    std::uint32_t src_ip = 0;
    std::uint32_t dst_ip = 0;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
};

class Packet {
public:
    /// Creates a synthetic packet: sizes only, no payload bytes.
    /// `frame_len` is the Ethernet frame length without FCS.
    Packet(std::uint64_t id, std::uint32_t frame_len, sim::SimTime sent_at)
        : id_(id), frame_len_(frame_len), sent_at_(sent_at) {}

    /// Creates a full packet owning its frame bytes (without FCS).
    Packet(std::uint64_t id, std::vector<std::byte> frame, sim::SimTime sent_at)
        : id_(id),
          frame_len_(static_cast<std::uint32_t>(frame.size())),
          sent_at_(sent_at),
          owned_(std::move(frame)),
          data_(owned_.data()) {}

    /// Creates a full packet whose payload (`frame_len` bytes, uninitialized)
    /// is owned by `arena` and returned to it on destruction.  Used by
    /// PacketArena::make_full; the arena outlives the packet by construction
    /// (the shared_ptr control block holds a reference to it).
    Packet(std::uint64_t id, std::uint32_t frame_len, sim::SimTime sent_at, std::byte* payload,
           PacketArena* arena)
        : id_(id), frame_len_(frame_len), sent_at_(sent_at), data_(payload), arena_(arena) {}

    Packet(const Packet&) = delete;
    Packet& operator=(const Packet&) = delete;

    ~Packet();

    [[nodiscard]] std::uint64_t id() const { return id_; }

    /// Ethernet frame length in bytes, excluding preamble and FCS.
    [[nodiscard]] std::uint32_t frame_len() const { return frame_len_; }

    [[nodiscard]] sim::SimTime sent_at() const { return sent_at_; }

    [[nodiscard]] bool has_bytes() const { return data_ != nullptr; }

    /// Frame bytes; empty span for synthetic packets.
    [[nodiscard]] std::span<const std::byte> bytes() const {
        return data_ != nullptr ? std::span<const std::byte>{data_, frame_len_}
                                : std::span<const std::byte>{};
    }

    /// Writable frame bytes, for filling a full packet before it is
    /// published.  Only valid for full packets.
    [[nodiscard]] std::span<std::byte> mutable_bytes() {
        return {data_, data_ != nullptr ? frame_len_ : 0};
    }

    [[nodiscard]] const FlowTuple& flow() const { return flow_; }

    /// Stamps the flow identity; called by the generator before the packet
    /// is published as an immutable PacketPtr.
    void set_flow(const FlowTuple& flow) { flow_ = flow; }

private:
    std::uint64_t id_ = 0;
    std::uint32_t frame_len_ = 0;
    sim::SimTime sent_at_{};
    FlowTuple flow_{};
    std::vector<std::byte> owned_;       // self-owned full mode only
    std::byte* data_ = nullptr;          // payload (self- or arena-owned)
    PacketArena* arena_ = nullptr;       // non-null when payload is arena-owned
};

using PacketPtr = std::shared_ptr<const Packet>;

/// Consumer interface for frame delivery (switch ports, splitter taps, NICs).
class FrameSink {
public:
    virtual ~FrameSink() = default;

    /// Called at the simulated time the frame has fully arrived.
    virtual void on_frame(const PacketPtr& packet) = 0;
};

}  // namespace capbench::net
