// RFC 1071 Internet checksum.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace capbench::net {

/// Computes the one's-complement Internet checksum over `data`.
/// The returned value is ready to be stored in a header checksum field.
std::uint16_t internet_checksum(std::span<const std::byte> data);

/// Verifies a buffer whose checksum field is already filled in:
/// the sum over the whole buffer must be zero.
bool checksum_ok(std::span<const std::byte> data);

}  // namespace capbench::net
