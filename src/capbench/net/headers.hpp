// Ethernet / IPv4 / UDP header types with encode/decode to raw bytes.
//
// The generator uses these to synthesise real frames; the BPF filter
// compiler uses the field offsets; tests round-trip them.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace capbench::net {

/// 48-bit Ethernet MAC address.
class MacAddr {
public:
    constexpr MacAddr() = default;
    constexpr explicit MacAddr(std::array<std::uint8_t, 6> octets) : octets_(octets) {}

    /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive). Throws on bad input.
    static MacAddr parse(const std::string& text);

    [[nodiscard]] std::string to_string() const;
    [[nodiscard]] const std::array<std::uint8_t, 6>& octets() const { return octets_; }

    /// Returns the address incremented by `n` (wrapping), used for the
    /// generator's MAC-cycling feature.
    [[nodiscard]] MacAddr plus(std::uint64_t n) const;

    friend constexpr bool operator==(const MacAddr&, const MacAddr&) = default;

private:
    std::array<std::uint8_t, 6> octets_{};
};

/// IPv4 address in host byte order internally.
class Ipv4Addr {
public:
    constexpr Ipv4Addr() = default;
    constexpr explicit Ipv4Addr(std::uint32_t host_order) : value_(host_order) {}

    /// Parses dotted-quad "a.b.c.d". Throws on bad input.
    static Ipv4Addr parse(const std::string& text);

    [[nodiscard]] std::string to_string() const;
    [[nodiscard]] std::uint32_t value() const { return value_; }

    friend constexpr bool operator==(const Ipv4Addr&, const Ipv4Addr&) = default;

private:
    std::uint32_t value_ = 0;
};

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;
inline constexpr std::uint16_t kEtherTypeRarp = 0x8035;

inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

inline constexpr std::size_t kEthernetHeaderLen = 14;
inline constexpr std::size_t kIpv4MinHeaderLen = 20;
inline constexpr std::size_t kUdpHeaderLen = 8;

struct EthernetHeader {
    MacAddr dst;
    MacAddr src;
    std::uint16_t ether_type = kEtherTypeIpv4;

    void encode(std::span<std::byte> out) const;  // needs >= 14 bytes
    static EthernetHeader decode(std::span<const std::byte> in);
};

struct Ipv4Header {
    std::uint8_t tos = 0;
    std::uint16_t total_length = 0;  // header + payload
    std::uint16_t identification = 0;
    std::uint16_t flags_fragment = 0;  // 3-bit flags + 13-bit offset
    std::uint8_t ttl = 64;
    std::uint8_t protocol = kIpProtoUdp;
    std::uint16_t checksum = 0;  // filled by encode()
    Ipv4Addr src;
    Ipv4Addr dst;

    /// Encodes a 20-byte header (IHL=5), computing the checksum.
    void encode(std::span<std::byte> out) const;
    static Ipv4Header decode(std::span<const std::byte> in);

    [[nodiscard]] bool more_fragments() const { return (flags_fragment & 0x2000) != 0; }
    [[nodiscard]] std::uint16_t fragment_offset() const { return flags_fragment & 0x1FFF; }
};

struct UdpHeader {
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint16_t length = 0;  // header + payload
    std::uint16_t checksum = 0;

    void encode(std::span<std::byte> out) const;  // needs >= 8 bytes
    static UdpHeader decode(std::span<const std::byte> in);
};

/// Big-endian load/store helpers used across the packet code.
std::uint16_t load_be16(std::span<const std::byte> in, std::size_t off);
std::uint32_t load_be32(std::span<const std::byte> in, std::size_t off);
void store_be16(std::span<std::byte> out, std::size_t off, std::uint16_t v);
void store_be32(std::span<std::byte> out, std::size_t off, std::uint32_t v);

}  // namespace capbench::net
