// Point-to-point gigabit fiber link and passive optical splitter.
#pragma once

#include <cstdint>
#include <vector>

#include "capbench/net/packet.hpp"
#include "capbench/net/wire.hpp"
#include "capbench/sim/simulator.hpp"

namespace capbench::net {

/// Unidirectional 1 Gbit/s link.  Serializes frames: a frame handed to
/// transmit() while the link is busy is delayed until the wire is free
/// (back-pressure towards the generator NIC).
class Link {
public:
    /// `gbps` is the link speed (1 for the thesis's GigE; 10 for the
    /// Section 7.2 10-Gigabit scenario).
    explicit Link(sim::Simulator& sim, double gbps = 1.0) : sim_(&sim), gbps_(gbps) {}

    [[nodiscard]] double gbps() const { return gbps_; }

    void attach(FrameSink& sink) { sinks_.push_back(&sink); }

    /// Starts transmitting `packet` as soon as the wire is free; delivery to
    /// all attached sinks happens when the frame has fully arrived.
    /// Returns the time transmission will complete.
    sim::SimTime transmit(PacketPtr packet);

    /// Time at which the link becomes idle.
    [[nodiscard]] sim::SimTime busy_until() const { return busy_until_; }

    [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }

private:
    sim::Simulator* sim_;
    double gbps_ = 1.0;
    std::vector<FrameSink*> sinks_;
    sim::SimTime busy_until_{};
    std::uint64_t frames_sent_ = 0;
};

/// Passive optical splitter (Figure 2.3/3.1): duplicates the light to every
/// output with no buffering and no loss; its only real-world effect is a
/// reduced signal strength, which we do not model.
class Splitter : public FrameSink {
public:
    void attach(FrameSink& sink) { sinks_.push_back(&sink); }

    void on_frame(const PacketPtr& packet) override {
        for (auto* sink : sinks_) sink->on_frame(packet);
    }

private:
    std::vector<FrameSink*> sinks_;
};

/// Load distributor: hands each frame to exactly ONE output, round-robin —
/// the "physically distributing the traffic over different machines for
/// analysis" approach of Section 7.2.  Unlike the passive splitter this
/// needs an active device, but it divides the per-machine load by the
/// fan-out.
class RoundRobinSplitter : public FrameSink {
public:
    void attach(FrameSink& sink) { sinks_.push_back(&sink); }

    void on_frame(const PacketPtr& packet) override {
        if (sinks_.empty()) return;
        sinks_[next_]->on_frame(packet);
        next_ = (next_ + 1) % sinks_.size();
    }

private:
    std::vector<FrameSink*> sinks_;
    std::size_t next_ = 0;
};

}  // namespace capbench::net
