#include "capbench/net/wire.hpp"

// wire.hpp is header-only; this TU exists to compile its definitions once.
