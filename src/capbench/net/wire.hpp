// Gigabit Ethernet wire timing.
//
// Frame layout on the wire: 7 B preamble + 1 B SFD + frame (>= 60 B padded)
// + 4 B FCS + 12 B inter-frame gap.  The "data rate" reported by the
// generator and plotted in the thesis counts frame bytes (header + payload,
// no preamble/FCS/IFG), which is why the maximum achievable data rate with
// 1500-byte frames is below 1000 Mbit/s even on an ideal link.
#pragma once

#include <cstdint>

#include "capbench/sim/time.hpp"

namespace capbench::net {

inline constexpr std::uint32_t kPreambleSfdBytes = 8;
inline constexpr std::uint32_t kFcsBytes = 4;
inline constexpr std::uint32_t kInterFrameGapBytes = 12;
inline constexpr std::uint32_t kMinFrameBytes = 60;    // without FCS
inline constexpr std::uint32_t kMaxFrameBytes = 1514;  // without FCS (no jumbo frames; Sec. 4.2.1)
inline constexpr double kGigabitBitsPerSecond = 1e9;

/// Frame length after minimum-size padding (still without FCS).
constexpr std::uint32_t padded_frame_len(std::uint32_t frame_len) {
    return frame_len < kMinFrameBytes ? kMinFrameBytes : frame_len;
}

/// Total bytes a frame occupies on the wire including overhead.
constexpr std::uint32_t wire_bytes(std::uint32_t frame_len) {
    return padded_frame_len(frame_len) + kPreambleSfdBytes + kFcsBytes + kInterFrameGapBytes;
}

/// Time one frame occupies a 1 Gbit/s link (serialization + gap).
constexpr sim::Duration wire_time(std::uint32_t frame_len) {
    // 1 Gbit/s = 1 bit per ns, so 8 ns per byte.
    return sim::Duration{static_cast<std::int64_t>(wire_bytes(frame_len)) * 8};
}

/// Frame time on a faster link (the 10-Gigabit future-work scenario of
/// Section 7.2).  `gbps` must be >= 1.
constexpr sim::Duration wire_time_at(std::uint32_t frame_len, double gbps) {
    return sim::Duration{
        static_cast<std::int64_t>(static_cast<double>(wire_bytes(frame_len)) * 8.0 / gbps)};
}

/// Maximum achievable frame-data rate in Mbit/s for fixed-size frames of
/// `frame_len` bytes on an ideal gigabit link.
constexpr double max_data_rate_mbps(std::uint32_t frame_len) {
    return 8.0 * static_cast<double>(frame_len) /
           (8.0 * static_cast<double>(wire_bytes(frame_len))) * 1000.0;
}

/// Packets per second for a given frame-data rate (Mbit/s) and frame size.
constexpr double packets_per_second(double data_rate_mbps, std::uint32_t frame_len) {
    return data_rate_mbps * 1e6 / (8.0 * static_cast<double>(frame_len));
}

}  // namespace capbench::net
