// Packet arena: freelist-backed recycling of packet control blocks and
// payload buffers.
//
// The generator publishes millions of shared immutable packets per run; with
// plain make_shared every packet costs a control-block allocation (plus a
// payload allocation in full mode), all freed moments later when the last
// sniffer drops its reference.  The arena turns that churn into two freelist
// pops and pushes:
//
//  * control blocks: packets are created with std::allocate_shared using a
//    NodeAlloc that recycles the single combined (control block + Packet)
//    node size through a freelist.  The allocator holds a
//    shared_ptr<PacketArena>, so the arena stays alive until the last
//    control block referencing it is destroyed — which is why PacketArena
//    is always handled through PacketArena::create().
//  * payloads: full-mode packets draw a fixed 2 KiB buffer (enough for any
//    standard Ethernet frame) from a second freelist and return it from
//    ~Packet.  Oversized frames fall back to the packet-owned vector.
//
// Single-threaded by design, like everything inside one Testbed; parallel
// sweeps give each replication its own Testbed and therefore its own arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "capbench/net/packet.hpp"
#include "capbench/sim/time.hpp"

namespace capbench::net {

class PacketArena : public std::enable_shared_from_this<PacketArena> {
public:
    /// Payload buffer size.  Covers every legal Ethernet frame (1518 B
    /// without FCS, plus slack for VLAN tags / jumbo-ish test frames).
    static constexpr std::uint32_t kPayloadCapacity = 2048;

    struct Stats {
        std::uint64_t node_allocs = 0;       // fresh node allocations
        std::uint64_t node_reuses = 0;       // freelist hits
        std::uint64_t payload_allocs = 0;    // fresh payload buffers
        std::uint64_t payload_reuses = 0;    // payload freelist hits
        std::uint64_t oversize_payloads = 0; // frames > kPayloadCapacity
    };

    /// Arenas must be shared_ptr-managed (packet control blocks keep the
    /// arena alive through the allocator they embed).
    static std::shared_ptr<PacketArena> create() {
        return std::shared_ptr<PacketArena>(new PacketArena());
    }

    PacketArena(const PacketArena&) = delete;
    PacketArena& operator=(const PacketArena&) = delete;
    ~PacketArena();

    /// Synthetic packet (sizes only): one recycled node, no payload.
    /// Returned mutable so the caller can stamp the flow identity; publish
    /// it as PacketPtr once configured.
    [[nodiscard]] std::shared_ptr<Packet> make_synthetic(std::uint64_t id,
                                                         std::uint32_t frame_len,
                                                         sim::SimTime sent_at);

    /// Full packet with `frame_len` writable, uninitialized payload bytes.
    /// Returned as a mutable pointer so the caller can encode the frame;
    /// publish it as PacketPtr once filled.
    [[nodiscard]] std::shared_ptr<Packet> make_full(std::uint64_t id, std::uint32_t frame_len,
                                                    sim::SimTime sent_at);

    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    friend class Packet;
    template <typename T>
    friend class ArenaNodeAlloc;

    PacketArena() = default;

    // ---- control-block nodes (single size, discovered at first alloc) ----
    void* acquire_node(std::size_t bytes);
    void release_node(void* p, std::size_t bytes) noexcept;

    // ---- payload buffers -------------------------------------------------
    std::byte* acquire_payload();
    void release_payload(std::byte* p) noexcept;

    struct FreeNode {
        FreeNode* next;
    };

    std::size_t node_size_ = 0;      // combined control block + Packet size
    FreeNode* free_nodes_ = nullptr;
    std::vector<std::byte*> free_payloads_;
    Stats stats_;
};

/// Allocator used with std::allocate_shared: funnels the combined
/// (control block + Packet) node through the arena's freelist and keeps the
/// arena alive for as long as any control block it produced exists.
template <typename T>
class ArenaNodeAlloc {
public:
    using value_type = T;

    explicit ArenaNodeAlloc(std::shared_ptr<PacketArena> arena) : arena_(std::move(arena)) {}

    template <typename U>
    ArenaNodeAlloc(const ArenaNodeAlloc<U>& other) : arena_(other.arena_) {}

    T* allocate(std::size_t n) {
        if (n != 1) return static_cast<T*>(::operator new(n * sizeof(T)));
        return static_cast<T*>(arena_->acquire_node(sizeof(T)));
    }

    void deallocate(T* p, std::size_t n) noexcept {
        if (n != 1) {
            ::operator delete(p);
            return;
        }
        arena_->release_node(p, sizeof(T));
    }

    template <typename U>
    bool operator==(const ArenaNodeAlloc<U>& other) const {
        return arena_ == other.arena_;
    }

private:
    template <typename U>
    friend class ArenaNodeAlloc;

    std::shared_ptr<PacketArena> arena_;
};

}  // namespace capbench::net
