#include "capbench/scenario/registry.hpp"

#include <ostream>

#include "capbench/capture/os.hpp"
#include "capbench/harness/report.hpp"
#include "capbench/load/minideflate.hpp"

namespace capbench::scenario {

namespace {

using harness::RunConfig;
using harness::SutConfig;

using SutBuilder = std::function<std::vector<SutConfig>()>;
using Tweak = std::function<void(RunConfig&)>;

/// The (a)/(b) sub-figure pair: the same roster in single- and
/// dual-processor mode (Section 6.1's "number of processors" variable).
std::vector<Variant> both_modes(const SutBuilder& dual, const Tweak& tweak = nullptr) {
    const SutBuilder single = [dual] {
        auto suts = dual();
        harness::apply_single_cpu(suts);
        return suts;
    };
    return {Variant{"single processor mode", "(a)", single, tweak},
            Variant{"dual processor mode", "(b)", dual, tweak}};
}

std::vector<Variant> smp_only(const SutBuilder& suts, const Tweak& tweak = nullptr) {
    return {Variant{"", "", suts, tweak}};
}

std::vector<SutConfig> increased_buffer_suts() {
    auto suts = harness::standard_suts();
    harness::apply_increased_buffers(suts);
    return suts;
}

SutBuilder multiapp_suts(int app_count) {
    return [app_count] {
        auto suts = increased_buffer_suts();
        for (auto& sut : suts) sut.app_count = app_count;
        return suts;
    };
}

SutBuilder loaded_suts(const std::function<void(SutConfig&)>& mutate) {
    return [mutate] {
        auto suts = increased_buffer_suts();
        for (auto& sut : suts) mutate(sut);
        return suts;
    };
}

Scenario sweep_scenario(std::string id, std::string caption, std::vector<Variant> variants,
                        bool multi_app = false) {
    Scenario s;
    s.id = std::move(id);
    s.caption = std::move(caption);
    s.axis = Axis::kRateMbps;
    s.sweep = harness::default_rate_grid();
    s.multi_app = multi_app;
    s.variants = std::move(variants);
    return s;
}

Scenario custom_scenario(std::string id, std::string caption,
                         std::function<CustomResult()> build) {
    Scenario s;
    s.id = std::move(id);
    s.caption = std::move(caption);
    s.custom = std::move(build);
    return s;
}

std::vector<Scenario> build_registry() {
    std::vector<Scenario> all;

    // ---- Chapter 4: the workload and the generator -------------------
    all.push_back(custom_scenario(
        "fig_4_1",
        "Packet size distribution of the (synthetic) 24h MWN trace; most frequent sizes "
        "at 40, 52 and 1500 bytes",
        detail::fig_4_1_table));
    all.push_back(custom_scenario(
        "fig_4_2",
        "Relative frequency of the top 20 packet sizes and their cumulative share",
        detail::fig_4_2_table));
    all.push_back(custom_scenario(
        "fig_4_4",
        "Maximum achievable data rate [Mbit/s] of the enhanced pktgen by NIC and packet "
        "size (no inter-packet gap)",
        detail::fig_4_4_table));

    // ---- Chapter 6: the evaluation -----------------------------------
    {
        auto s = sweep_scenario("fig_6_2", "default buffers, 1 app, no filter, no load",
                                both_modes(harness::standard_suts));
        s.preamble = [](std::ostream& out) {
            out << "Systems under test (Figure 2.4):\n";
            harness::print_sut_inventory(out, harness::standard_suts());
        };
        all.push_back(std::move(s));
    }
    all.push_back(sweep_scenario("fig_6_3", "increased buffers, 1 app, no filter, no load",
                                 both_modes(increased_buffer_suts)));
    {
        Scenario s;
        s.id = "fig_6_4";
        s.caption = "capture rate vs. buffer size at maximum data rate (buffer halved for "
                    "FreeBSD's double buffer)";
        s.axis = Axis::kBufferKb;
        s.sweep = {128,  256,   512,   1024,  2048,   4096,
                   8192, 16384, 32768, 65536, 131072, 262144};
        s.variants = both_modes(harness::standard_suts);
        all.push_back(std::move(s));
    }
    {
        auto s = sweep_scenario(
            "fig_6_6", "50-instruction BPF filter, increased buffers",
            both_modes(loaded_suts([](SutConfig& sut) {
                           sut.filter_expression = harness::fig_6_5_filter_expression();
                       }),
                       [](RunConfig& cfg) {
                           cfg.full_bytes = true;  // the filter inspects real contents
                       }));
        s.preamble = detail::fig_6_6_preamble;
        all.push_back(std::move(s));
    }
    all.push_back(sweep_scenario("fig_6_7", "2 capturing applications, SMP, increased buffers",
                                 smp_only(multiapp_suts(2)), /*multi_app=*/true));
    all.push_back(sweep_scenario("fig_6_8", "4 capturing applications, SMP, increased buffers",
                                 smp_only(multiapp_suts(4)), /*multi_app=*/true));
    all.push_back(sweep_scenario("fig_6_9", "8 capturing applications, SMP, increased buffers",
                                 smp_only(multiapp_suts(8)), /*multi_app=*/true));
    all.push_back(sweep_scenario(
        "fig_6_10", "50 packet copies per packet, increased buffers",
        both_modes(loaded_suts([](SutConfig& sut) { sut.app_load.memcpy_count = 50; }))));
    {
        auto s = sweep_scenario(
            "fig_6_11", "zlib-level-3 compression per packet",
            both_modes(loaded_suts([](SutConfig& sut) { sut.app_load.compress_level = 3; })));
        s.preamble = [](std::ostream& out) {
            out << "MiniDeflate cost: level 3 = " << load::compression_cycles_per_byte(3)
                << " cycles/byte, level 9 = " << load::compression_cycles_per_byte(9)
                << " cycles/byte\n";
        };
        all.push_back(std::move(s));
    }
    all.push_back(sweep_scenario("fig_6_12", "pipe whole packets to gzip -3, SMP",
                                 smp_only(loaded_suts([](SutConfig& sut) {
                                     sut.app_load.pipe_to_gzip = true;
                                     sut.app_load.pipe_gzip_level = 3;
                                 }))));
    all.push_back(custom_scenario(
        "fig_6_13", "maximum disk write speed and CPU usage per system (bonnie++)",
        detail::fig_6_13_table));
    all.push_back(sweep_scenario(
        "fig_6_14", "write first 76 bytes of every packet to disk",
        both_modes(loaded_suts([](SutConfig& sut) { sut.app_load.disk_bytes_per_packet = 76; }))));
    all.push_back(sweep_scenario("fig_6_15", "mmap libpcap vs. stock, Linux systems",
                                 both_modes([] {
                                     std::vector<SutConfig> suts;
                                     for (const auto* name : {"swan", "snipe"}) {
                                         auto stock = harness::standard_sut(name);
                                         stock.buffer_bytes = 128ull * 1024 * 1024;
                                         auto mmap = stock;
                                         mmap.name = std::string(name) + "-mmap";
                                         mmap.stack = harness::StackKind::kMmap;
                                         suts.push_back(std::move(stock));
                                         suts.push_back(std::move(mmap));
                                     }
                                     return suts;
                                 })));
    all.push_back(sweep_scenario("fig_6_16", "Hyperthreading on/off, Intel systems, SMP",
                                 smp_only([] {
                                     std::vector<SutConfig> suts;
                                     for (const auto* name : {"snipe", "flamingo"}) {
                                         auto off = harness::standard_sut(name);
                                         off.buffer_bytes =
                                             off.os->family == capture::OsFamily::kFreeBsd
                                                 ? 10ull * 1024 * 1024
                                                 : 128ull * 1024 * 1024;
                                         auto on = off;
                                         on.name = std::string(name) + "-HT";
                                         on.hyperthreading = true;
                                         suts.push_back(std::move(off));
                                         suts.push_back(std::move(on));
                                     }
                                     return suts;
                                 })));

    // ---- Appendix B --------------------------------------------------
    all.push_back(sweep_scenario("fig_b_1", "FreeBSD 5.4 vs. 5.2.1, SMP, increased buffers",
                                 smp_only([] {
                                     std::vector<SutConfig> suts;
                                     for (const auto* name : {"moorhen", "flamingo"}) {
                                         auto v54 = harness::standard_sut(name);
                                         v54.buffer_bytes = 10ull * 1024 * 1024;
                                         auto v521 = v54;
                                         v521.name = std::string(name) + "-5.2.1";
                                         v521.os = &capture::OsSpec::freebsd_5_2_1();
                                         suts.push_back(std::move(v54));
                                         suts.push_back(std::move(v521));
                                     }
                                     return suts;
                                 })));
    all.push_back(sweep_scenario(
        "fig_b_2", "25 packet copies per packet, increased buffers",
        both_modes(loaded_suts([](SutConfig& sut) { sut.app_load.memcpy_count = 25; }))));
    all.push_back(sweep_scenario(
        "fig_b_3", "zlib-level-9 compression per packet, SMP",
        smp_only(loaded_suts([](SutConfig& sut) { sut.app_load.compress_level = 9; }))));

    // ---- Extensions (Section 7.2 future work) and ablations ----------
    {
        Scenario s = sweep_scenario(
            "ext_10gbe", "capture rate on a 10-Gigabit link (future work, Section 7.2)",
            smp_only(increased_buffer_suts,
                     [](RunConfig& cfg) { cfg.link_gbps = 10.0; }));
        s.sweep.clear();
        for (double r = 500; r <= 9500; r += 1000) s.sweep.push_back(r);
        s.postscript =
            "Even the best 2005 commodity system saturates near 1 Gbit/s of this load;\n"
            "10GbE capture needs faster buses/disks or load distribution (Section 7.2).";
        all.push_back(std::move(s));
    }
    {
        Scenario s;
        s.id = "ext_distributed";
        s.caption = "aggregate capture on a 10-Gigabit link: one sniffer vs. four behind a "
                    "round-robin distributor (future work, Section 7.2)";
        s.axis = Axis::kRateMbps;
        for (double r = 1000; r <= 9000; r += 1000) s.sweep.push_back(r);
        s.variants = {
            Variant{"one moorhen takes the whole stream", "-1x",
                    [] {
                        std::vector<SutConfig> suts{harness::standard_sut("moorhen")};
                        harness::apply_increased_buffers(suts);
                        return suts;
                    },
                    [](RunConfig& cfg) { cfg.link_gbps = 10.0; }},
            Variant{"four moorhens behind a round-robin distributor", "-4x",
                    [] {
                        std::vector<SutConfig> suts;
                        for (int i = 0; i < 4; ++i) {
                            auto sut = harness::standard_sut("moorhen");
                            sut.name = "moorhen" + std::to_string(i);
                            sut.buffer_bytes = 10ull << 20;
                            suts.push_back(std::move(sut));
                        }
                        return suts;
                    },
                    [](RunConfig& cfg) {
                        cfg.link_gbps = 10.0;
                        cfg.distribute_round_robin = true;
                    }},
        };
        s.postscript =
            "Each distributed sniffer sees a quarter of the stream, so its capture rate is\n"
            "relative to the full stream; the fleet's aggregate is the per-SUT sum.\n"
            "Distribution multiplies the capture ceiling by the fan-out — the thesis's\n"
            "proposed way of conquering bandwidths one machine cannot handle.";
        all.push_back(std::move(s));
    }
    all.push_back(sweep_scenario(
        "ext_zerocopy_bpf", "zero-copy (mmap) BPF vs. stock double buffer, FreeBSD",
        both_modes([] {
            std::vector<SutConfig> suts;
            for (const auto* name : {"moorhen", "flamingo"}) {
                auto stock = harness::standard_sut(name);
                stock.buffer_bytes = 10ull << 20;
                auto zc = stock;
                zc.name = std::string(name) + "-zc";
                zc.stack = harness::StackKind::kZeroCopyBpf;
                suts.push_back(std::move(stock));
                suts.push_back(std::move(zc));
            }
            return suts;
        })));
    {
        // Multi-queue RSS receive (the modern answer to Section 7.2's "one
        // machine cannot keep up"): sweep queue/core count at a fixed
        // overload and watch the capture rate scale — or not, when the
        // indirection table is skewed or the apps share a fanout cluster.
        Scenario s;
        s.id = "ext_multiqueue";
        s.caption = "multi-queue RSS receive: capture rate vs. queue/core count at overload "
                    "(future work, Section 7.2)";
        s.axis = Axis::kQueues;
        s.sweep = {1, 2, 4, 8};
        s.multi_app = true;
        const SutBuilder mq_suts = [] {
            std::vector<SutConfig> suts{harness::standard_sut("swan"),
                                        harness::standard_sut("moorhen")};
            harness::apply_increased_buffers(suts);
            return suts;
        };
        const auto mq_tweak = [](double gbps, double rate) {
            return [gbps, rate](RunConfig& cfg) {
                cfg.link_gbps = gbps;
                cfg.rate_mbps = rate;
                cfg.flow_count = 4096;  // spread flows across the RSS table
            };
        };
        s.variants = {
            Variant{"balanced RSS, 10 Gbit/s offered", "-10g", mq_suts, mq_tweak(10.0, 9500)},
            Variant{"balanced RSS, 40 Gbit/s offered", "-40g", mq_suts, mq_tweak(40.0, 38000)},
            Variant{"skewed indirection (3/4 of entries on queue 0), 10 Gbit/s", "-skew",
                    [mq_suts] {
                        auto suts = mq_suts();
                        for (auto& sut : suts) sut.nic.indirection_skew = 0.75;
                        return suts;
                    },
                    mq_tweak(10.0, 9500)},
            Variant{"queue fanout: 4 apps, each pinned to one queue, 10 Gbit/s", "-qfan",
                    [mq_suts] {
                        auto suts = mq_suts();
                        for (auto& sut : suts) {
                            sut.app_count = 4;
                            sut.fanout = capture::FanoutMode::kQueue;
                        }
                        return suts;
                    },
                    mq_tweak(10.0, 9500)},
            Variant{"cluster fanout: 4 apps, flow-hash spread, 10 Gbit/s", "-cfan",
                    [mq_suts] {
                        auto suts = mq_suts();
                        for (auto& sut : suts) {
                            sut.app_count = 4;
                            sut.fanout = capture::FanoutMode::kCluster;
                        }
                        return suts;
                    },
                    mq_tweak(10.0, 9500)},
        };
        s.postscript =
            "Each point gives every sniffer N cores and N receive queues (queue i's IRQ on\n"
            "CPU i).  Balanced RSS scales the capture rate with the queue count until\n"
            "another bottleneck binds; the skewed indirection table funnels 3/4 of the\n"
            "flows through queue 0 and gives most of the parallelism back.  Queue/cluster\n"
            "fanout splits the stream across 4 applications, so per-app capture is\n"
            "relative to the full stream (the fleet aggregate is the per-app sum).";
        all.push_back(std::move(s));
    }
    all.push_back(custom_scenario(
        "ext_filter_tiers",
        "BPF execution tiers: interpreter vs. token-threaded vs. native jit, "
        "fig-6.5-style filter cost sweep (host time)",
        detail::ext_filter_tiers_table));
    {
        // exact-capture's listener/writer split on the fig-6.14 workload
        // (76-byte header trace): the capture thread hands arena-backed
        // records through a fixed bring ring to a per-app writer thread
        // instead of paying the write inline.  The spill policy decides
        // what a full ring does: block (lossless back-pressure) or drop
        // (counted in the disk_spill bucket).
        Scenario s;
        s.id = "ext_disk_writer";
        s.caption = "capture-to-disk writer pipeline: bring-ring hand-off vs. inline "
                    "write, 76-byte header trace (ring depth x spill policy)";
        s.axis = Axis::kRateMbps;
        s.sweep = harness::default_rate_grid();
        const auto dw_suts = [](bool enabled, std::size_t slots,
                                load::SpillPolicy spill) -> SutBuilder {
            return [enabled, slots, spill] {
                auto suts = increased_buffer_suts();
                for (auto& sut : suts) {
                    sut.app_load.disk_bytes_per_packet = 76;
                    sut.disk_writer.enabled = enabled;
                    sut.disk_writer.ring_slots = slots;
                    sut.disk_writer.spill = spill;
                }
                return suts;
            };
        };
        s.variants = {
            Variant{"inline write on the capture thread (classic)", "-inline",
                    dw_suts(false, 256, load::SpillPolicy::kBlock)},
            Variant{"writer thread, 256-slot ring, block on full", "-ring256",
                    dw_suts(true, 256, load::SpillPolicy::kBlock)},
            Variant{"writer thread, 32-slot ring, drop-newest", "-ring32-dropnew",
                    dw_suts(true, 32, load::SpillPolicy::kDropNewest)},
            Variant{"writer thread, 32-slot ring, drop-oldest", "-ring32-dropold",
                    dw_suts(true, 32, load::SpillPolicy::kDropOldest)},
        };
        s.postscript =
            "The inline variant charges write() + per-byte disk cost on the capture\n"
            "thread (the classic fig-6.14 model).  The ring variants move that cost to a\n"
            "cold writer thread; a full ring either back-pressures the capture thread\n"
            "(block) or spills records, which count against capture as `disk_spill`\n"
            "drops — delivered + all drop buckets still sums exactly to generated.";
        all.push_back(std::move(s));
    }
    {
        // Square-wave overload pulses (the ISSUE 10 telemetry workload):
        // every 20 ms the generator multiplies its target rate by 10 for
        // 5 ms, so a sampled run shows clean bursts of drops separated by
        // healthy recovery — the shape the OverloadDetector must carve
        // into episodes aligned with the bursts.
        Scenario s;
        s.id = "ext_overload_pulse";
        s.caption = "square-wave overload pulses: periodic 10x bursts over a steady base "
                    "rate (interval-telemetry workload)";
        s.axis = Axis::kRateMbps;
        s.sweep = {80, 160, 240};
        s.variants = {Variant{"", "", [] {
                                  std::vector<SutConfig> suts{
                                      harness::standard_sut("swan"),
                                      harness::standard_sut("moorhen")};
                                  return suts;
                              },
                              [](RunConfig& cfg) {
                                  cfg.burst_period = sim::milliseconds(20);
                                  cfg.burst_duration = sim::milliseconds(5);
                                  cfg.burst_multiplier = 10.0;
                              }}};
        s.postscript =
            "The base rates are comfortable; the 10x bursts are not.  With\n"
            "--timeseries the per-interval drop deltas light up during each burst and\n"
            "the overload detector coalesces them into episodes (one per burst at a\n"
            "fine enough CAPBENCH_SAMPLE_INTERVAL); delivered + drops still sums\n"
            "exactly to generated, interval by interval.";
        all.push_back(std::move(s));
    }
    {
        // Receive livelock is a single-processor phenomenon: the interrupts
        // and the starved application compete for the same CPU (Section 2.2.1).
        auto s = sweep_scenario(
            "ablation_livelock",
            "interrupt moderation on vs. off (one interrupt per packet), single CPU",
            smp_only([] {
                std::vector<SutConfig> suts;
                for (const auto* name : {"swan", "moorhen"}) {
                    auto normal = harness::standard_sut(name);
                    normal.buffer_bytes = name[0] == 's' ? 128ull << 20 : 10ull << 20;
                    auto livelock = normal;
                    livelock.name = std::string(name) + "-noNAPI";
                    livelock.nic.interrupt_moderation = false;
                    suts.push_back(std::move(normal));
                    suts.push_back(std::move(livelock));
                }
                harness::apply_single_cpu(suts);
                return suts;
            }));
        all.push_back(std::move(s));
    }

    return all;
}

}  // namespace

const std::vector<Scenario>& registry() {
    static const std::vector<Scenario> all = build_registry();
    return all;
}

const Scenario* find_scenario(const std::string& id) {
    for (const auto& s : registry())
        if (s.id == id) return &s;
    return nullptr;
}

}  // namespace capbench::scenario
