// Scenario descriptors: every reproduced figure/table is *data* — an id
// matching the thesis numbering, a caption, a sweep axis, SUT mutations
// and RunConfig deltas — executed by one engine (scenario/runner.hpp)
// instead of 20+ copy-pasted figure main()s.
//
// Two scenario shapes exist:
//  * sweep scenarios run the Section 3.4 measurement cycle over an x-axis
//    (data rate or buffer size) for one or more variants (e.g. the
//    single/dual-processor (a)/(b) sub-figures), and
//  * custom scenarios (the Chapter 4 workload tables and the Figure 6.13
//    disk benchmark) produce labelled tables directly.
// Both render through the shared report path (text, gnuplot, JSON).
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "capbench/harness/experiment.hpp"

namespace capbench::scenario {

enum class Axis {
    kRateMbps,   // generator data rate [Mbit/s]
    kBufferKb,   // capture buffer size [kB] at maximum data rate
    kQueues,     // NIC receive queues == cores at a fixed offered load
};

/// One experiment line of a sweep scenario: a SUT roster plus RunConfig
/// deltas.  `suffix` keys output files ("fig_6_2(a).dat") and JSON
/// variant entries; it is empty for single-variant scenarios.
struct Variant {
    std::string name;    // human label, e.g. "single processor mode"
    std::string suffix;  // file/banner suffix, e.g. "(a)"
    std::function<std::vector<harness::SutConfig>()> suts;
    std::function<void(harness::RunConfig&)> tweak;  // optional config deltas
};

/// A labelled table for non-sweep figures.
struct TableData {
    std::string title;  // optional sub-table heading
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

struct CustomResult {
    std::vector<TableData> tables;
    std::string notes;  // free text printed (and exported) after the tables
};

struct Scenario {
    std::string id;       // thesis numbering: "fig_6_2", "fig_b_1", "ext_10gbe"
    std::string caption;  // the figure caption
    Axis axis = Axis::kRateMbps;
    std::vector<double> sweep;  // x values (rates in Mbit/s or buffers in kB)
    bool multi_app = false;     // worst/avg/best columns (Figures 6.7-6.9)
    std::vector<Variant> variants;
    /// Extra context printed before the runs (SUT inventory, the Figure
    /// 6.6 optimizer comparison, ...).
    std::function<void(std::ostream&)> preamble;
    /// Free text printed after the results (the ext_* conclusions).
    std::string postscript;
    /// Non-null for custom (table) scenarios; `variants` is empty then.
    std::function<CustomResult()> custom;

    [[nodiscard]] bool is_custom() const { return static_cast<bool>(custom); }
    [[nodiscard]] const char* x_label() const {
        if (axis == Axis::kQueues) return "queues";
        return axis == Axis::kRateMbps ? "Mbit/s" : "buffer kB";
    }
};

/// One executed sweep point.
struct PointResult {
    double x = 0.0;
    harness::RunResult result;
};

struct VariantResult {
    std::string name;
    std::string suffix;
    std::vector<PointResult> points;
};

/// Everything the report layer needs to render a scenario: the resolved
/// descriptor fields plus the measured data and run metadata.
struct ScenarioResult {
    std::string id;
    std::string caption;
    std::string x_label;
    bool multi_app = false;
    bool is_custom = false;
    std::vector<VariantResult> variants;  // sweep scenarios
    CustomResult table;                   // custom scenarios
    std::string postscript;
    // Run metadata (the "config" block of the JSON document).
    std::uint64_t packets = 0;
    int reps = 1;
    std::uint64_t base_seed = 1;
    int jobs = 1;
};

}  // namespace capbench::scenario
