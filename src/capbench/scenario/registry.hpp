// The scenario registry: every Chapter-6/Appendix-B figure, the Chapter-4
// workload tables, the Section-7.2 extensions and the ablations, in
// thesis order.
#pragma once

#include <string>
#include <vector>

#include "capbench/scenario/scenario.hpp"

namespace capbench::scenario {

/// All registered scenarios in presentation order (Chapter 4, Chapter 6,
/// Appendix B, extensions, ablations).  Built once; treat as immutable.
const std::vector<Scenario>& registry();

/// Lookup by id ("fig_6_2"); nullptr when unknown.
const Scenario* find_scenario(const std::string& id);

namespace detail {
// Table builders and preambles for the non-sweep figures
// (scenario/custom_figures.cpp).
CustomResult fig_4_1_table();
CustomResult fig_4_2_table();
CustomResult fig_4_4_table();
CustomResult fig_6_13_table();
CustomResult ext_filter_tiers_table();
void fig_6_6_preamble(std::ostream& out);
}  // namespace detail

}  // namespace capbench::scenario
