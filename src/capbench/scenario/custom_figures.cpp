// Builders for the non-sweep scenarios: the Chapter 4 workload/generator
// tables, the Figure 6.13 disk benchmark and the Figure 6.6 optimizer
// preamble.  Ported from the original standalone figure mains so the
// registry covers every reproduced figure.
#include <chrono>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "capbench/bpf/analysis/optimize.hpp"
#include "capbench/bpf/decoded.hpp"
#include "capbench/bpf/filter/codegen.hpp"
#include "capbench/bpf/jit/jit_program.hpp"
#include "capbench/bpf/threaded_vm.hpp"
#include "capbench/bpf/verifier.hpp"
#include "capbench/bpf/vm.hpp"
#include "capbench/dist/builtin.hpp"
#include "capbench/hostsim/machine.hpp"
#include "capbench/load/disk.hpp"
#include "capbench/net/link.hpp"
#include "capbench/pktgen/pktgen.hpp"
#include "capbench/scenario/registry.hpp"
#include "capbench/sim/simulator.hpp"

namespace capbench::scenario::detail {

namespace {

std::string fmt(const char* format, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, format, v);
    return buf;
}

/// Synthesizes one full-bytes frame of the given size (shared by the
/// Figure 6.6 comparison and the pktgen rate table).
std::vector<std::byte> one_frame(std::uint32_t size) {
    sim::Simulator sim;
    net::Link link{sim};
    pktgen::GenConfig cfg;
    cfg.count = 1;
    cfg.packet_size = size;
    cfg.full_bytes = true;
    pktgen::Generator gen{sim, link, pktgen::GenNicModel::syskonnect(), std::move(cfg)};
    struct Sink : net::FrameSink {
        net::PacketPtr packet;
        void on_frame(const net::PacketPtr& p) override { packet = p; }
    } sink;
    link.attach(sink);
    gen.start(sim::SimTime{});
    sim.run();
    const auto bytes = sink.packet->bytes();
    return {bytes.begin(), bytes.end()};
}

double max_rate(const pktgen::GenNicModel& nic, std::uint32_t size) {
    sim::Simulator sim;
    net::Link link{sim};
    pktgen::GenConfig cfg;
    cfg.count = 5'000;
    cfg.packet_size = size;
    pktgen::Generator gen{sim, link, nic, std::move(cfg)};
    gen.start(sim::SimTime{});
    sim.run();
    return gen.stats().achieved_mbps();
}

double max_rate_dist(const pktgen::GenNicModel& nic) {
    sim::Simulator sim;
    net::Link link{sim};
    pktgen::GenConfig cfg;
    cfg.count = 50'000;
    cfg.size_dist.emplace(dist::mwn_trace_histogram());
    cfg.use_dist = true;
    pktgen::Generator gen{sim, link, nic, std::move(cfg)};
    gen.start(sim::SimTime{});
    sim.run();
    return gen.stats().achieved_mbps();
}

}  // namespace

CustomResult fig_4_1_table() {
    const auto hist = dist::mwn_trace_histogram(1'000'000);
    CustomResult result;

    TableData bins;
    bins.headers = {"size range [bytes]", "packets", "share %"};
    for (std::uint32_t base = 0; base <= 1500; base += 100) {
        std::uint64_t count = 0;
        for (std::uint32_t s = base; s < base + 100 && s <= 1500; ++s) count += hist.count(s);
        char range[32];
        std::snprintf(range, sizeof range, "%4u-%4u", base, std::min(base + 99, 1500u));
        bins.rows.push_back(
            {range, std::to_string(count),
             fmt("%6.2f", 100.0 * static_cast<double>(count) /
                              static_cast<double>(hist.total()))});
    }
    result.tables.push_back(std::move(bins));

    TableData peaks;
    peaks.title = "Dominant exact sizes";
    peaks.headers = {"size", "packets", "share %"};
    for (const auto& [size, count] : hist.top_sizes(5)) {
        peaks.rows.push_back(
            {std::to_string(size), std::to_string(count),
             fmt("%6.2f", 100.0 * static_cast<double>(count) /
                              static_cast<double>(hist.total()))});
    }
    result.tables.push_back(std::move(peaks));
    result.notes = "mean packet size: " + fmt("%.1f", hist.mean()) +
                   " bytes (Section 6.3.1 uses ~645)";
    return result;
}

CustomResult fig_4_2_table() {
    const auto hist = dist::mwn_trace_histogram(1'000'000);
    CustomResult result;
    TableData table;
    table.headers = {"rank", "size [bytes]", "share %", "cumulative %"};
    double cumulative = 0.0;
    int rank = 1;
    for (const auto& [size, count] : hist.top_sizes(20)) {
        const double share =
            100.0 * static_cast<double>(count) / static_cast<double>(hist.total());
        cumulative += share;
        table.rows.push_back({std::to_string(rank++), std::to_string(size),
                              fmt("%6.2f", share), fmt("%6.2f", cumulative)});
    }
    table.rows.push_back({"rest", "-", "", ""});
    result.tables.push_back(std::move(table));
    result.notes = "top 3 share: " + fmt("%.1f", 100.0 * hist.top_fraction(3)) +
                   " % (thesis: > 55 %), top 20 share: " +
                   fmt("%.1f", 100.0 * hist.top_fraction(20)) + " % (thesis: > 75 %)";
    return result;
}

CustomResult fig_4_4_table() {
    const auto nics = {pktgen::GenNicModel::syskonnect(), pktgen::GenNicModel::netgear(),
                       pktgen::GenNicModel::intel()};
    CustomResult result;
    TableData table;
    table.headers = {"packet size [bytes]", "Syskonnect", "Netgear", "Intel"};
    for (const std::uint32_t size : {64u, 128u, 256u, 512u, 1024u, 1500u}) {
        std::vector<std::string> row{std::to_string(size)};
        for (const auto& nic : nics) row.push_back(fmt("%7.1f", max_rate(nic, size)));
        table.rows.push_back(std::move(row));
    }
    std::vector<std::string> dist_row{"MWN distribution"};
    for (const auto& nic : nics) dist_row.push_back(fmt("%7.1f", max_rate_dist(nic)));
    table.rows.push_back(std::move(dist_row));
    result.tables.push_back(std::move(table));
    result.notes = "(thesis anchors @1500B: Syskonnect 938, Netgear 930, Intel 890 Mbit/s)";
    return result;
}

namespace {

/// Bulk writer: keeps the disk queue full for one simulated second.
class BonnieWriter final : public hostsim::Thread {
public:
    BonnieWriter(load::DiskModel& disk, sim::SimTime stop)
        : Thread("bonnie"), disk_(&disk), stop_(stop) {}

    void main() override { write_loop(); }

    void write_loop() {
        if (machine().sim().now() >= stop_) return;
        constexpr std::uint64_t kChunk = 256 * 1024;
        exec(disk_->write_work(kChunk), hostsim::CpuState::kSystem, [this] {
            if (!disk_->write(256 * 1024, *this)) {
                block([this] { write_loop(); });
                return;
            }
            write_loop();
        });
    }

private:
    load::DiskModel* disk_;
    sim::SimTime stop_;
};

}  // namespace

CustomResult fig_6_13_table() {
    CustomResult result;
    TableData table;
    table.headers = {"system", "write speed [MB/s]", "CPU usage %"};
    for (const auto* name : {"swan", "snipe", "moorhen", "flamingo"}) {
        sim::Simulator sim;
        hostsim::Machine machine{
            sim, hostsim::MachineSpec{*harness::standard_sut(name).arch, 2, false},
            harness::standard_sut(name).os->sched};
        load::DiskModel disk{machine, load::disk_spec_for(name)};
        const auto stop = sim::SimTime{} + sim::seconds(1);
        auto writer = std::make_shared<BonnieWriter>(disk, stop);
        machine.spawn(writer);
        sim.run(stop);
        const double mb_per_s = static_cast<double>(disk.bytes_written()) / 1e6;
        const double cpu_pct = 100.0 * machine.total_busy().seconds() / 1.0 / 2.0;
        table.rows.push_back({name, fmt("%6.1f", mb_per_s), fmt("%5.1f", cpu_pct)});
    }
    result.tables.push_back(std::move(table));
    result.notes = "line speed (full packets):   ~119 MB/s  <- none reaches it\n"
                   "header trace (76 B/packet): ~13.6 MB/s  <- all manage it";
    return result;
}

CustomResult ext_filter_tiers_table() {
    // The Figure 6.5 story, retold for execution tiers: the same filter
    // programs run through the portable interpreter, the token-threaded
    // tier 1 dispatcher (verifier fact table -> decode-time bounds-check
    // elision and constant folding) and, where the build supports it, the
    // tier 2 native x86-64 jit.  Host wall-time per packet is the payload
    // here, so the numbers vary run to run; the instruction counts and
    // decode statistics are deterministic.
    const std::string expr = harness::fig_6_5_filter_expression();
    struct Case {
        const char* label;
        bpf::Program prog;
    };
    std::vector<Case> cases;
    cases.push_back({"udp", bpf::filter::compile_filter("udp", 1515)});
    cases.push_back({"tcp or udp", bpf::filter::compile_filter("tcp or udp", 1515)});
    cases.push_back(
        {"fig 6.5 stock", bpf::filter::compile_filter(expr, 1515, {.optimize = false})});
    cases.push_back({"fig 6.5 optimized", bpf::filter::compile_filter(expr, 1515)});

    std::vector<std::vector<std::byte>> frames;
    for (const std::uint32_t size : {64u, 128u, 256u, 645u, 1024u, 1514u})
        frames.push_back(one_frame(size));

    constexpr int kIters = 10'000;
    const auto time_ns_per_run = [&frames](auto&& run) {
        volatile std::uint32_t sink = 0;
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < kIters; ++i)
            for (const auto& frame : frames) sink = sink + run(frame);
        const auto stop = std::chrono::steady_clock::now();
        return static_cast<double>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                       .count()) /
               static_cast<double>(kIters) / static_cast<double>(frames.size());
    };

    CustomResult result;
    TableData table;
    const bool jit = bpf::JitProgram::supported();
    table.headers = {"filter",      "insns",       "mean executed", "loads unchecked",
                     "loads folded", "interp ns",  "threaded ns",   "t1 speedup",
                     "jit ns",      "jit speedup"};
    for (const auto& c : cases) {
        const auto verified = bpf::verify(c.prog);
        const auto decoded = bpf::decode(c.prog, verified.facts);
        const auto compiled =
            jit ? bpf::JitProgram::compile(decoded)
                : std::shared_ptr<const bpf::JitProgram>{};
        double executed = 0;
        for (const auto& frame : frames) {
            const auto interp = bpf::Vm::run(c.prog, frame);
            const auto threaded = bpf::ThreadedVm::run(decoded, frame);
            executed += interp.insns_executed;
            if (interp.accept_len != threaded.accept_len ||
                interp.aborted != threaded.aborted)
                throw std::logic_error("ext_filter_tiers: tier verdict mismatch");
            if (compiled != nullptr) {
                const auto native = compiled->run(
                    frame, static_cast<std::uint32_t>(frame.size()));
                if (native.accept_len != interp.accept_len ||
                    native.aborted != interp.aborted ||
                    native.insns_executed != interp.insns_executed)
                    throw std::logic_error("ext_filter_tiers: jit verdict mismatch");
            }
        }
        executed /= static_cast<double>(frames.size());
        const double interp_ns = time_ns_per_run(
            [&c](const auto& frame) { return bpf::Vm::run(c.prog, frame).accept_len; });
        const double threaded_ns = time_ns_per_run([&decoded](const auto& frame) {
            return bpf::ThreadedVm::run(decoded, frame).accept_len;
        });
        const double jit_ns =
            compiled != nullptr
                ? time_ns_per_run([&compiled](const auto& frame) {
                      return compiled
                          ->run(frame, static_cast<std::uint32_t>(frame.size()))
                          .accept_len;
                  })
                : 0.0;
        table.rows.push_back({c.label, std::to_string(c.prog.size()),
                              fmt("%5.1f", executed),
                              std::to_string(decoded.stats.unchecked_loads) + "/" +
                                  std::to_string(decoded.stats.packet_loads),
                              std::to_string(decoded.stats.folded_loads),
                              fmt("%7.1f", interp_ns), fmt("%7.1f", threaded_ns),
                              fmt("%4.2fx", interp_ns / threaded_ns),
                              compiled != nullptr ? fmt("%7.1f", jit_ns) : "-",
                              compiled != nullptr ? fmt("%4.2fx", interp_ns / jit_ns)
                                                  : "-"});
    }
    result.tables.push_back(std::move(table));
    result.notes =
        std::string("dispatch: ") +
        (bpf::ThreadedVm::computed_goto() ? "computed-goto (token-threaded)"
                                          : "dense switch (portable fallback)") +
        std::string("\ntier 2: ") +
        (jit ? "native x86-64 code (W^X mmap, fact-driven check elision)"
             : "unavailable on this build — jit requests fall back to threaded") +
        "\nAll tiers execute the same instruction stream (1:1 decode), so the\n"
        "simulated filter cost is identical; the speedup is host time saved by\n"
        "pre-decoding, threaded/native dispatch and bounds-check elision.";
    return result;
}

void fig_6_6_preamble(std::ostream& out) {
    const std::string expr = harness::fig_6_5_filter_expression();
    const auto stock = bpf::filter::compile_filter(expr, 1515, {.optimize = false});
    bpf::analysis::OptimizeStats stats;
    const auto optimized = bpf::analysis::optimize(stock, &stats);

    double stock_insns = 0;
    double opt_insns = 0;
    std::size_t accepted = 0;
    std::vector<std::vector<std::byte>> frames;
    for (const std::uint32_t size : {64u, 128u, 256u, 645u, 1024u, 1514u})
        frames.push_back(one_frame(size));
    for (const auto& frame : frames) {
        const auto before = bpf::Vm::run(stock, frame);
        const auto after = bpf::Vm::run(optimized, frame);
        stock_insns += before.insns_executed;
        opt_insns += after.insns_executed;
        if (after.accept_len > 0) ++accepted;
    }
    stock_insns /= static_cast<double>(frames.size());
    opt_insns /= static_cast<double>(frames.size());
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "Figure 6.5 filter: %zu BPF instructions as emitted, %zu after static\n"
                  "optimization (%d rounds; tcpdump -O also reaches 50).  Mean executed\n"
                  "instructions per generated frame: %.1f stock -> %.1f optimized,\n"
                  "%zu/%zu frames accepted.\n\n",
                  stats.insns_before, stats.insns_after, stats.rounds, stock_insns,
                  opt_insns, accepted, frames.size());
    out << buf;
    const auto prog = bpf::filter::compile_filter(expr, 1515);
    out << "The rate sweep below runs the optimized " << prog.size()
        << "-instruction program.\n";
}

}  // namespace capbench::scenario::detail
