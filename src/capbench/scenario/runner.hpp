// The scenario execution engine: runs a Scenario descriptor through the
// measurement cycle (sweep points fanned out over a ParallelExecutor),
// renders the thesis-style text tables, and routes every figure's output
// through the shared gnuplot/JSON report path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "capbench/scenario/registry.hpp"
#include "capbench/sim/time.hpp"

namespace capbench::obs {
class TimeSeries;
class TraceSink;
}

namespace capbench::scenario {

struct RunOptions {
    /// Sweep-point fan-out (see harness::ParallelExecutor); results are
    /// bit-identical regardless of the value.
    int jobs = 1;
    /// Text report target; nullptr runs quietly (tests, JSON-only runs).
    std::ostream* out = nullptr;
    /// Gnuplot export directory; when empty and `gnuplot_env_fallback`
    /// is set, CAPBENCH_GNUPLOT_DIR is honoured — uniformly for every
    /// scenario, sweep or custom.
    std::string gnuplot_dir;
    bool gnuplot_env_fallback = true;
    /// 0 = packets_per_run() (CAPBENCH_PACKETS).
    std::uint64_t packets = 0;
    /// 0 = default_reps() (CAPBENCH_REPS).
    int reps = 0;
    /// Base workload seed (rep k of a point runs at seed + k*7919).
    std::uint64_t seed = 1;
    /// Collect packet-lifecycle metrics for every sweep point (the
    /// capbench.metrics.v1 layer of ScenarioResult).  Off by default —
    /// disabled runs are byte-identical to pre-observability builds.
    bool metrics = false;
    /// Timeline sink (Chrome trace-event JSON).  The trace records one
    /// deterministic designated run: first variant, last sweep point,
    /// rep 0 — identical at any job count.  Must outlive the call.
    obs::TraceSink* trace = nullptr;
    /// Interval time-series sink (capbench.timeseries.v1): samples the
    /// same designated run as `trace`, every `sample_interval` of
    /// simulated time.  Non-null requires a positive interval; must
    /// outlive the call.
    obs::TimeSeries* timeseries = nullptr;
    sim::Duration sample_interval = sim::Duration::zero();
};

/// Executes the scenario: runs every variant's sweep (or the custom table
/// builder), prints progressively to opts.out, exports gnuplot data, and
/// returns the structured result for the JSON layer.
ScenarioResult run_scenario(const Scenario& s, const RunOptions& opts);

/// One line per registered scenario: "<id>  <caption>".  The CLI's
/// --list output; pinned by a golden test so ids/captions cannot drift
/// from the thesis figure numbering.
std::string list_text();

/// Entry point for the per-figure shim binaries: runs scenario `id` with
/// text output, CAPBENCH_JOBS workers and env-driven gnuplot export.
/// Returns a process exit code (0 ok, 1 runtime error, 2 unknown id).
int run_shim(const std::string& id);

}  // namespace capbench::scenario
