#include "capbench/scenario/runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "capbench/harness/report.hpp"

namespace capbench::scenario {

namespace {

std::string variant_caption(const Scenario& s, const Variant& v) {
    if (v.name.empty()) return s.caption;
    return s.caption + " — " + v.name;
}

void print_custom(std::ostream& out, const CustomResult& table) {
    bool first = true;
    for (const auto& t : table.tables) {
        if (!first) out << '\n';
        first = false;
        if (!t.title.empty()) out << t.title << ":\n";
        harness::Table rendered{t.headers};
        for (const auto& row : t.rows) rendered.add_row(row);
        rendered.print(out);
    }
    if (!table.notes.empty()) out << '\n' << table.notes << '\n';
}

void export_sweep_gnuplot(const std::string& dir, const std::string& file_id,
                          const std::string& caption, const std::string& gp_x_label,
                          const std::vector<harness::SweepRow>& rows, bool multi_app,
                          std::ostream* out) {
    const std::string base = dir + "/" + file_id;
    std::ofstream data{base + ".dat"};
    harness::write_gnuplot_data(data, rows, multi_app);
    std::ofstream script{base + ".gp"};
    harness::write_gnuplot_script(script, file_id + ".dat", caption, rows, gp_x_label,
                                  multi_app);
    if (!data || !script)
        throw std::runtime_error("gnuplot export failed: cannot write " + base + ".dat/.gp");
    if (out != nullptr) *out << "(gnuplot data written to " << base << ".dat / .gp)\n";
}

void export_custom_data(const std::string& dir, const ScenarioResult& res, std::ostream* out) {
    const std::string path = dir + "/" + res.id + ".dat";
    std::ofstream data{path};
    data << "# " << res.id << ": " << res.caption << '\n';
    for (const auto& t : res.table.tables) {
        if (!t.title.empty()) data << "# " << t.title << '\n';
        data << '#';
        for (const auto& h : t.headers) data << ' ' << h << " |";
        data << '\n';
        for (const auto& row : t.rows) {
            for (std::size_t i = 0; i < row.size(); ++i) data << (i > 0 ? "\t" : "") << row[i];
            data << '\n';
        }
    }
    if (!data)
        throw std::runtime_error("gnuplot export failed: cannot write " + path);
    if (out != nullptr) *out << "(table data written to " << path << ")\n";
}

std::string resolve_gnuplot_dir(const RunOptions& opts) {
    std::string dir = opts.gnuplot_dir;
    if (dir.empty() && opts.gnuplot_env_fallback) {
        if (const char* env = std::getenv("CAPBENCH_GNUPLOT_DIR")) dir = env;
    }
    if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        if (ec)
            throw std::runtime_error("cannot create gnuplot directory '" + dir +
                                     "': " + ec.message());
    }
    return dir;
}

}  // namespace

ScenarioResult run_scenario(const Scenario& s, const RunOptions& opts) {
    ScenarioResult res;
    res.id = s.id;
    res.caption = s.caption;
    res.x_label = s.x_label();
    res.multi_app = s.multi_app;
    res.is_custom = s.is_custom();
    res.postscript = s.postscript;
    res.packets = opts.packets != 0 ? opts.packets : harness::packets_per_run();
    res.reps = opts.reps != 0 ? opts.reps : harness::default_reps();
    res.base_seed = opts.seed;
    res.jobs = std::max(1, opts.jobs);

    std::ostream* out = opts.out;
    const std::string gnuplot_dir = resolve_gnuplot_dir(opts);

    if (s.is_custom()) {
        if (out != nullptr) {
            harness::print_figure_banner(*out, s.id, s.caption);
            if (s.preamble) s.preamble(*out);
        }
        res.table = s.custom();
        if (out != nullptr) print_custom(*out, res.table);
        if (!gnuplot_dir.empty()) export_custom_data(gnuplot_dir, res, out);
        return res;
    }

    if (out != nullptr && s.preamble) s.preamble(*out);

    const harness::ParallelExecutor exec{res.jobs};
    const std::string gp_x_label = s.axis == Axis::kRateMbps ? "Datarate [Mbit/s]"
                                   : s.axis == Axis::kBufferKb
                                       ? "Buffer size [kB]"
                                       : "Receive queues / cores";
    bool first_variant = true;
    for (const auto& v : s.variants) {
        const auto suts = v.suts();
        harness::RunConfig cfg;
        cfg.packets = res.packets;
        cfg.seed = res.base_seed;
        cfg.collect_metrics = opts.metrics;
        cfg.sample_interval = opts.sample_interval;
        if (v.tweak) v.tweak(cfg);

        // The timeline and time-series belong to one deterministic run:
        // the first variant's sweep designates its last point (see
        // rate_sweep).
        obs::TraceSink* trace = first_variant ? opts.trace : nullptr;
        obs::TimeSeries* timeseries = first_variant ? opts.timeseries : nullptr;
        first_variant = false;

        std::vector<harness::SweepRow> rows;
        if (s.axis == Axis::kRateMbps) {
            rows = harness::rate_sweep(suts, cfg, s.sweep, res.reps, &exec, trace, timeseries);
        } else if (s.axis == Axis::kQueues) {
            std::vector<int> counts;
            counts.reserve(s.sweep.size());
            for (const double c : s.sweep) counts.push_back(static_cast<int>(c));
            rows = harness::queue_sweep(suts, cfg, counts, res.reps, &exec, trace, timeseries);
        } else {
            std::vector<std::uint64_t> buffer_kb;
            buffer_kb.reserve(s.sweep.size());
            for (const double kb : s.sweep)
                buffer_kb.push_back(static_cast<std::uint64_t>(kb));
            rows = harness::buffer_sweep(suts, cfg, buffer_kb, res.reps, &exec, trace,
                                         timeseries);
        }

        if (out != nullptr) {
            harness::print_figure_banner(*out, s.id + v.suffix, variant_caption(s, v));
            harness::print_sweep(*out, res.x_label, rows, s.multi_app);
        }
        if (!gnuplot_dir.empty())
            export_sweep_gnuplot(gnuplot_dir, s.id + v.suffix, variant_caption(s, v),
                                 gp_x_label, rows, s.multi_app, out);

        VariantResult vr;
        vr.name = v.name;
        vr.suffix = v.suffix;
        vr.points.reserve(rows.size());
        for (auto& row : rows)
            vr.points.push_back(PointResult{row.rate_mbps, std::move(row.result)});
        res.variants.push_back(std::move(vr));
    }
    if (out != nullptr && !s.postscript.empty()) *out << '\n' << s.postscript << '\n';
    return res;
}

std::string list_text() {
    std::size_t width = 0;
    for (const auto& s : registry()) width = std::max(width, s.id.size());
    std::string out;
    for (const auto& s : registry()) {
        out += s.id;
        out.append(width + 2 - s.id.size(), ' ');
        out += s.caption;
        out += '\n';
    }
    return out;
}

int run_shim(const std::string& id) {
    try {
        const Scenario* s = find_scenario(id);
        if (s == nullptr) {
            std::cerr << "capbench: unknown scenario '" << id << "'\n";
            return 2;
        }
        RunOptions opts;
        opts.out = &std::cout;
        opts.jobs = harness::default_jobs();
        run_scenario(*s, opts);
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "capbench: " << e.what() << '\n';
        return 1;
    }
}

}  // namespace capbench::scenario
