// cpusage: CPU state sampling (Chapter 5, Appendix A.3).
//
// The original tool reads the kernel's CPU state tick counters every half
// second and prints the percentage spent in each state.  The simulated
// version reads the Machine's per-CPU accounting — with zero perturbation,
// which trivially satisfies the "impact on the system load should be
// small" requirement of Section 3.2.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "capbench/hostsim/machine.hpp"

namespace capbench::profiling {

/// One sampling interval's percentages (machine-wide, averaged over CPUs).
struct UsageSample {
    double user_pct = 0.0;
    double system_pct = 0.0;
    double interrupt_pct = 0.0;
    double idle_pct = 100.0;

    [[nodiscard]] double busy_pct() const { return 100.0 - idle_pct; }
};

class CpuSage {
public:
    /// Samples `machine` every `interval` once start() is called.
    CpuSage(hostsim::Machine& machine, sim::Duration interval = sim::milliseconds(500));

    /// Begins sampling (schedules the recurring read).
    void start();

    /// Stops after the current interval.
    void stop() { running_ = false; }

    [[nodiscard]] const std::vector<UsageSample>& samples() const { return samples_; }

    /// Writes the human-readable cpusage output; `machine_readable` is the
    /// -o option (colon separated, no state names).
    void print(std::ostream& out, bool machine_readable = false) const;

private:
    void sample_now();

    hostsim::Machine* machine_;
    sim::Duration interval_;
    bool running_ = false;
    std::array<sim::Duration, hostsim::kCpuStateCount> last_{};
    std::vector<UsageSample> samples_;
};

}  // namespace capbench::profiling
