#include "capbench/profiling/cpusage.hpp"

#include <ostream>

namespace capbench::profiling {

namespace {

std::array<sim::Duration, hostsim::kCpuStateCount> totals(const hostsim::Machine& machine) {
    std::array<sim::Duration, hostsim::kCpuStateCount> out{};
    for (int c = 0; c < machine.logical_cpus(); ++c) {
        out[0] += machine.cpu(c).in_state(hostsim::CpuState::kUser);
        out[1] += machine.cpu(c).in_state(hostsim::CpuState::kSystem);
        out[2] += machine.cpu(c).in_state(hostsim::CpuState::kInterrupt);
    }
    return out;
}

}  // namespace

CpuSage::CpuSage(hostsim::Machine& machine, sim::Duration interval)
    : machine_(&machine), interval_(interval) {}

void CpuSage::start() {
    if (running_) return;
    running_ = true;
    last_ = totals(*machine_);
    machine_->sim().schedule_in(interval_, [this] { sample_now(); });
}

void CpuSage::sample_now() {
    if (!running_) return;
    const auto now = totals(*machine_);
    const double window =
        interval_.seconds() * static_cast<double>(machine_->logical_cpus());
    UsageSample s;
    s.user_pct = (now[0] - last_[0]).seconds() / window * 100.0;
    s.system_pct = (now[1] - last_[1]).seconds() / window * 100.0;
    s.interrupt_pct = (now[2] - last_[2]).seconds() / window * 100.0;
    s.idle_pct = 100.0 - s.user_pct - s.system_pct - s.interrupt_pct;
    if (s.idle_pct < 0.0) s.idle_pct = 0.0;
    samples_.push_back(s);
    last_ = now;
    machine_->sim().schedule_in(interval_, [this] { sample_now(); });
}

void CpuSage::print(std::ostream& out, bool machine_readable) const {
    for (const auto& s : samples_) {
        if (machine_readable) {
            out << s.user_pct << ':' << s.system_pct << ':' << s.interrupt_pct << ':'
                << s.idle_pct << '\n';
        } else {
            out << "user " << s.user_pct << "  system " << s.system_pct << "  interrupt "
                << s.interrupt_pct << "  idle " << s.idle_pct << '\n';
        }
    }
}

}  // namespace capbench::profiling
