// trimusage: postprocessing of cpusage output (Section 5.2, Appendix A.4).
//
// The original awk script finds the longest consecutive run of samples
// whose idle percentage is below a limit (default 95 %) — i.e. the window
// in which the measurement was actually running — and averages the CPU
// states over that run, discarding ramp-up and ramp-down samples.
#pragma once

#include <optional>
#include <vector>

#include "capbench/profiling/cpusage.hpp"

namespace capbench::profiling {

struct TrimResult {
    UsageSample average;       // averaged over the longest busy run
    std::size_t run_length = 0;
    std::size_t run_start = 0;  // index of the first sample of the run
};

/// Returns std::nullopt when no sample is below the idle limit.
std::optional<TrimResult> trim_usage(const std::vector<UsageSample>& samples,
                                     double idle_limit_pct = 95.0);

}  // namespace capbench::profiling
