#include "capbench/profiling/trimusage.hpp"

namespace capbench::profiling {

std::optional<TrimResult> trim_usage(const std::vector<UsageSample>& samples,
                                     double idle_limit_pct) {
    // Longest run of samples with idle below the limit (the awk script's
    // set/longestset logic).
    std::size_t best_start = 0;
    std::size_t best_len = 0;
    std::size_t run_start = 0;
    std::size_t run_len = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        if (samples[i].idle_pct < idle_limit_pct) {
            if (run_len == 0) run_start = i;
            ++run_len;
            if (run_len > best_len) {
                best_len = run_len;
                best_start = run_start;
            }
        } else {
            run_len = 0;
        }
    }
    if (best_len == 0) return std::nullopt;

    TrimResult result;
    result.run_length = best_len;
    result.run_start = best_start;
    UsageSample sum;
    sum.idle_pct = 0.0;
    for (std::size_t i = best_start; i < best_start + best_len; ++i) {
        sum.user_pct += samples[i].user_pct;
        sum.system_pct += samples[i].system_pct;
        sum.interrupt_pct += samples[i].interrupt_pct;
        sum.idle_pct += samples[i].idle_pct;
    }
    const auto n = static_cast<double>(best_len);
    result.average = UsageSample{sum.user_pct / n, sum.system_pct / n, sum.interrupt_pct / n,
                                 sum.idle_pct / n};
    return result;
}

}  // namespace capbench::profiling
