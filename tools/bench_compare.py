#!/usr/bin/env python3
"""Diff committed capbench.perf.v1 benchmark snapshots for regressions.

The repo root accumulates BENCH_<date>[_<suite>].json documents produced by
`capbench_perf --json` (see EXPERIMENTS.md).  This tool groups them into
suites by filename suffix (no suffix -> "core"), takes the two newest
documents in each suite, and compares every case name they share on
`wall_seconds`.  A case that got more than --threshold slower is a
regression and the tool exits non-zero; suites with fewer than two
snapshots are skipped (nothing to diff yet), as are pairs whose
config.build_type differs (cross-build-type timings are meaningless).

Usage:
    tools/bench_compare.py                    # scan the repo root
    tools/bench_compare.py --root DIR         # scan another directory
    tools/bench_compare.py --pair OLD NEW     # compare two explicit files
    tools/bench_compare.py --threshold 0.40   # loosen the gate

Numbers are machine-dependent: only compare snapshots produced on the same
host (the committed ones all are).  Standard library only.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SCHEMA = "capbench.perf.v1"
NAME_RE = re.compile(r"^BENCH_(\d{4}-\d{2}-\d{2})(?:_(.+))?\.json$")


def load_doc(path: Path) -> dict:
    with path.open() as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema != SCHEMA:
        raise SystemExit(f"{path.name}: schema {schema!r}, expected {SCHEMA!r}")
    return doc


def discover_suites(root: Path) -> dict[str, list[Path]]:
    """Map suite name -> snapshot paths sorted oldest-to-newest.

    The ISO date in the filename sorts lexicographically; the full name is
    the tiebreak so same-day snapshots order deterministically.
    """
    suites: dict[str, list[Path]] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        m = NAME_RE.match(path.name)
        if m is None:
            print(f"note: {path.name} does not match BENCH_<date>[_suite].json, skipped")
            continue
        suites.setdefault(m.group(2) or "core", []).append(path)
    for paths in suites.values():
        paths.sort(key=lambda p: (NAME_RE.match(p.name).group(1), p.name))
    return suites


def compare_pair(old_path: Path, new_path: Path, threshold: float,
                 min_seconds: float) -> list[str]:
    """Return a list of regression descriptions (empty = pass)."""
    old_doc = load_doc(old_path)
    new_doc = load_doc(new_path)
    old_build = old_doc.get("config", {}).get("build_type")
    new_build = new_doc.get("config", {}).get("build_type")
    if old_build != new_build:
        print(f"  skip: build_type mismatch ({old_build} vs {new_build})")
        return []
    old_cases = {c["name"]: c for c in old_doc.get("cases", [])}
    new_cases = {c["name"]: c for c in new_doc.get("cases", [])}
    shared = sorted(old_cases.keys() & new_cases.keys())
    if not shared:
        print("  skip: no shared case names")
        return []
    regressions = []
    for name in shared:
        old_wall = old_cases[name]["wall_seconds"]
        new_wall = new_cases[name]["wall_seconds"]
        if old_wall < min_seconds or new_wall < min_seconds:
            print(f"  ~ {name}: below {min_seconds}s floor, not compared")
            continue
        ratio = new_wall / old_wall
        marker = "OK"
        if ratio > 1.0 + threshold:
            marker = "REGRESSION"
            regressions.append(
                f"{name}: {old_wall:.4f}s -> {new_wall:.4f}s "
                f"({(ratio - 1.0) * 100:+.1f}%, limit +{threshold * 100:.0f}%)")
        elif ratio < 1.0 - threshold:
            marker = "improved"
        print(f"  {marker:>10} {name}: {old_wall:.4f}s -> {new_wall:.4f}s "
              f"({(ratio - 1.0) * 100:+.1f}%)")
    only_old = sorted(old_cases.keys() - new_cases.keys())
    only_new = sorted(new_cases.keys() - old_cases.keys())
    if only_old:
        print(f"  note: cases only in {old_path.name}: {', '.join(only_old)}")
    if only_new:
        print(f"  note: cases only in {new_path.name}: {', '.join(only_new)}")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="directory holding BENCH_*.json (default: repo root)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional slowdown that fails (default 0.25 = 25%%)")
    parser.add_argument("--min-seconds", type=float, default=0.001,
                        help="ignore cases faster than this in either snapshot")
    parser.add_argument("--pair", nargs=2, type=Path, metavar=("OLD", "NEW"),
                        help="compare two explicit snapshots instead of scanning")
    args = parser.parse_args()

    all_regressions: list[str] = []
    if args.pair:
        old_path, new_path = args.pair
        print(f"{old_path.name} -> {new_path.name}:")
        all_regressions += compare_pair(old_path, new_path, args.threshold,
                                        args.min_seconds)
    else:
        suites = discover_suites(args.root)
        if not suites:
            raise SystemExit(f"no BENCH_*.json under {args.root}")
        for suite, paths in sorted(suites.items()):
            if len(paths) < 2:
                print(f"suite '{suite}': 1 snapshot ({paths[0].name}), "
                      "nothing to diff")
                continue
            old_path, new_path = paths[-2], paths[-1]
            print(f"suite '{suite}': {old_path.name} -> {new_path.name}:")
            all_regressions += compare_pair(old_path, new_path, args.threshold,
                                            args.min_seconds)

    if all_regressions:
        print(f"\nFAIL: {len(all_regressions)} regression(s)", file=sys.stderr)
        for r in all_regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print("\nbench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
