// Filter playground: compile a tcpdump-dialect expression with capbench's
// BPF compiler, show the generated program (like `tcpdump -d`) and run it
// against a few sample packets.
//
//   $ ./examples/filter_playground 'udp and dst host 192.168.10.12'
//   $ ./examples/filter_playground            # uses the Figure 6.5 filter
#include <cstdio>
#include <iostream>

#include "capbench/core/capbench.hpp"

namespace {

using namespace capbench;

std::vector<std::byte> make_frame(std::uint8_t protocol, const std::string& src_ip,
                                  const std::string& dst_ip, std::uint16_t dst_port) {
    std::vector<std::byte> frame(net::kEthernetHeaderLen + net::kIpv4MinHeaderLen +
                                 net::kUdpHeaderLen + 26);
    net::EthernetHeader eth;
    eth.dst = net::MacAddr::parse("00:0e:0c:01:02:03");
    eth.src = net::MacAddr::parse("00:00:00:00:00:01");
    eth.encode(frame);
    net::Ipv4Header ip;
    ip.total_length = static_cast<std::uint16_t>(frame.size() - net::kEthernetHeaderLen);
    ip.protocol = protocol;
    ip.src = net::Ipv4Addr::parse(src_ip);
    ip.dst = net::Ipv4Addr::parse(dst_ip);
    ip.encode(std::span{frame}.subspan(net::kEthernetHeaderLen));
    net::UdpHeader udp{1234, dst_port,
                       static_cast<std::uint16_t>(net::kUdpHeaderLen + 26), 0};
    udp.encode(std::span{frame}.subspan(net::kEthernetHeaderLen + net::kIpv4MinHeaderLen));
    return frame;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string expression =
        argc > 1 ? argv[1] : capbench::harness::fig_6_5_filter_expression();

    std::printf("expression:\n  %s\n\n", expression.c_str());
    capbench::bpf::Program prog;
    try {
        prog = capbench::bpf::filter::compile_filter(expression, 1515);
    } catch (const capbench::bpf::filter::FilterError& e) {
        std::fprintf(stderr, "compile error: %s\n", e.what());
        return 1;
    }
    std::printf("compiled to %zu instructions:\n%s\n", prog.size(),
                capbench::bpf::disassemble(prog).c_str());

    struct Sample {
        const char* label;
        std::vector<std::byte> frame;
    };
    const Sample samples[] = {
        {"UDP 192.168.10.100 -> 192.168.10.12:9",
         make_frame(net::kIpProtoUdp, "192.168.10.100", "192.168.10.12", 9)},
        {"TCP 192.168.10.100 -> 192.168.10.12:80",
         make_frame(net::kIpProtoTcp, "192.168.10.100", "192.168.10.12", 80)},
        {"UDP 10.11.12.13 -> 192.168.10.12:53",
         make_frame(net::kIpProtoUdp, "10.11.12.13", "192.168.10.12", 53)},
        {"ICMP 192.168.10.1 -> 192.168.10.12",
         make_frame(net::kIpProtoIcmp, "192.168.10.1", "192.168.10.12", 0)},
    };
    std::puts("sample packets:");
    for (const auto& sample : samples) {
        const auto result = capbench::bpf::Vm::run(prog, sample.frame);
        std::printf("  %-42s -> %s (%u instructions executed)\n", sample.label,
                    result.accept_len > 0 ? "ACCEPT" : "reject", result.insns_executed);
    }
    return 0;
}
