// Filter playground: compile a tcpdump-dialect expression with capbench's
// BPF compiler, show the generated program (like `tcpdump -d`) and run it
// against a few sample packets.
//
//   $ ./examples/filter_playground 'udp and dst host 192.168.10.12'
//   $ ./examples/filter_playground            # uses the Figure 6.5 filter
//   $ ./examples/filter_playground --lint 'tcp or udp'
//       static analysis: annotated disassembly + warnings (unreachable
//       code, uninitialized reads, filters that can never accept, ...)
//   $ ./examples/filter_playground --optimize
//       stock vs. optimized program side by side, with per-sample
//       executed-instruction counts
#include <cstdio>
#include <cstring>
#include <iostream>

#include "capbench/core/capbench.hpp"

namespace {

using namespace capbench;

std::vector<std::byte> make_frame(std::uint8_t protocol, const std::string& src_ip,
                                  const std::string& dst_ip, std::uint16_t dst_port) {
    std::vector<std::byte> frame(net::kEthernetHeaderLen + net::kIpv4MinHeaderLen +
                                 net::kUdpHeaderLen + 26);
    net::EthernetHeader eth;
    eth.dst = net::MacAddr::parse("00:0e:0c:01:02:03");
    eth.src = net::MacAddr::parse("00:00:00:00:00:01");
    eth.encode(frame);
    net::Ipv4Header ip;
    ip.total_length = static_cast<std::uint16_t>(frame.size() - net::kEthernetHeaderLen);
    ip.protocol = protocol;
    ip.src = net::Ipv4Addr::parse(src_ip);
    ip.dst = net::Ipv4Addr::parse(dst_ip);
    ip.encode(std::span{frame}.subspan(net::kEthernetHeaderLen));
    net::UdpHeader udp{1234, dst_port,
                       static_cast<std::uint16_t>(net::kUdpHeaderLen + 26), 0};
    udp.encode(std::span{frame}.subspan(net::kEthernetHeaderLen + net::kIpv4MinHeaderLen));
    return frame;
}

struct Sample {
    const char* label;
    std::vector<std::byte> frame;
};

std::vector<Sample> make_samples() {
    return {
        {"UDP 192.168.10.100 -> 192.168.10.12:9",
         make_frame(net::kIpProtoUdp, "192.168.10.100", "192.168.10.12", 9)},
        {"TCP 192.168.10.100 -> 192.168.10.12:80",
         make_frame(net::kIpProtoTcp, "192.168.10.100", "192.168.10.12", 80)},
        {"UDP 10.11.12.13 -> 192.168.10.12:53",
         make_frame(net::kIpProtoUdp, "10.11.12.13", "192.168.10.12", 53)},
        {"ICMP 192.168.10.1 -> 192.168.10.12",
         make_frame(net::kIpProtoIcmp, "192.168.10.1", "192.168.10.12", 0)},
    };
}

int run_default(const bpf::Program& prog) {
    std::printf("compiled to %zu instructions:\n%s\n", prog.size(),
                bpf::disassemble(prog).c_str());
    std::puts("sample packets:");
    for (const auto& sample : make_samples()) {
        const auto result = bpf::Vm::run(prog, sample.frame);
        std::printf("  %-42s -> %s (%u instructions executed)\n", sample.label,
                    result.accept_len > 0 ? "ACCEPT" : "reject", result.insns_executed);
    }
    return 0;
}

int run_lint(const bpf::Program& prog) {
    // Full verifier pipeline: validation, reachability/return structure,
    // abstract-interpretation findings and the fact-table summary.  Exits
    // nonzero on any error-severity finding so CI can gate on it.
    const auto result = bpf::verify(prog);
    std::printf("compiled to %zu instructions (unoptimized):\n%s\n", prog.size(),
                bpf::disassemble(prog, result.findings).c_str());
    if (result.findings.empty()) {
        std::puts("lint: clean — no findings");
        return 0;
    }
    std::printf("lint: %zu finding(s)\n", result.findings.size());
    for (const auto& f : result.findings)
        std::printf("  %s\n", to_string(f).c_str());
    return result.ok() ? 0 : 1;
}

int run_optimize(const bpf::Program& stock) {
    bpf::analysis::OptimizeStats stats;
    const auto optimized = bpf::analysis::optimize(stock, &stats);
    std::printf("stock program (%zu instructions):\n%s\n", stock.size(),
                bpf::disassemble(stock).c_str());
    std::printf("optimized program (%zu instructions, %d rounds):\n%s\n",
                optimized.size(), stats.rounds, bpf::disassemble(optimized).c_str());
    std::puts("sample packets (stock -> optimized executed instructions):");
    for (const auto& sample : make_samples()) {
        const auto before = bpf::Vm::run(stock, sample.frame);
        const auto after = bpf::Vm::run(optimized, sample.frame);
        std::printf("  %-42s -> %s  %u -> %u\n", sample.label,
                    after.accept_len > 0 ? "ACCEPT" : "reject", before.insns_executed,
                    after.insns_executed);
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    enum class Mode { kRun, kLint, kOptimize } mode = Mode::kRun;
    int arg = 1;
    if (arg < argc && std::strcmp(argv[arg], "--lint") == 0) {
        mode = Mode::kLint;
        ++arg;
    } else if (arg < argc && std::strcmp(argv[arg], "--optimize") == 0) {
        mode = Mode::kOptimize;
        ++arg;
    }
    const std::string expression =
        arg < argc ? argv[arg] : harness::fig_6_5_filter_expression();

    std::printf("expression:\n  %s\n\n", expression.c_str());
    bpf::Program prog;
    try {
        // Lint and optimize modes inspect the raw emitted program; the
        // default mode shows what a capture session would actually run.
        const bpf::filter::CompileOptions options{.optimize = mode == Mode::kRun};
        prog = bpf::filter::compile_filter(expression, 1515, options);
    } catch (const bpf::filter::FilterError& e) {
        std::fprintf(stderr, "compile error: %s\n", e.what());
        return 1;
    }
    switch (mode) {
        case Mode::kLint: return run_lint(prog);
        case Mode::kOptimize: return run_optimize(prog);
        default: return run_default(prog);
    }
}
