// Capture to a real pcap file: runs moorhen against generated traffic, and
// the capture application's per-packet handler streams 76-byte header
// records into a tcpdump-compatible pcap file (Section 6.3.5's header
// traces), which the example then re-reads and verifies.
//
//   $ ./examples/capture_to_pcap [out.pcap]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "capbench/core/capbench.hpp"

int main(int argc, char** argv) {
    using namespace capbench;
    using namespace capbench::harness;

    const std::string path = argc > 1 ? argv[1] : "headers.pcap";

    // Build the testbed by hand (run_once hides the sessions; here we need
    // the handler hook of the pcap-like API).
    TestbedConfig tb;
    tb.gen.count = 20'000;
    tb.gen.rate_mbps = 400.0;
    tb.gen.full_bytes = true;  // real frame contents end up in the file
    tb.gen.size_dist.emplace(dist::mwn_trace_histogram());
    tb.gen.use_dist = true;
    auto moorhen = standard_sut("moorhen");
    moorhen.buffer_bytes = 10ull << 20;
    tb.suts.push_back(std::move(moorhen));

    Testbed bed{std::move(tb)};
    bed.start_suts();

    std::ofstream file{path, std::ios::binary};
    if (!file) {
        std::fprintf(stderr, "cannot create %s\n", path.c_str());
        return 1;
    }
    pcap::FileWriter writer{file, /*snaplen=*/76};
    auto& session = *bed.suts()[0]->sessions()[0];
    session.set_filter("udp");
    auto& sim = bed.sim();
    session.set_handler([&](const net::PacketPtr& packet, std::uint32_t caplen) {
        writer.write(*packet, caplen, sim.now());
    });

    bool done = false;
    bed.generator().start(sim::SimTime{} + sim::milliseconds(10), [&] { done = true; });
    while (!done) sim.run(sim.now() + sim::seconds(1));
    sim.run(sim.now() + sim::milliseconds(200));
    file.close();

    const auto stats = session.stats();
    std::printf("captured %llu packets (%llu dropped), wrote %llu records to %s\n",
                static_cast<unsigned long long>(stats.ps_recv),
                static_cast<unsigned long long>(stats.ps_drop),
                static_cast<unsigned long long>(writer.records_written()), path.c_str());

    // Re-read and verify the file: every record must be a UDP header
    // snapshot with at most 76 bytes captured.
    std::ifstream in{path, std::ios::binary};
    pcap::FileReader reader{in};
    std::uint64_t records = 0;
    std::uint64_t udp = 0;
    while (const auto rec = reader.next()) {
        ++records;
        if (rec->caplen > 76) {
            std::fprintf(stderr, "record %llu exceeds the snaplen!\n",
                         static_cast<unsigned long long>(records));
            return 1;
        }
        if (rec->caplen >= 34) {
            const auto ip = net::Ipv4Header::decode(std::span{rec->data}.subspan(14));
            if (ip.protocol == net::kIpProtoUdp) ++udp;
        }
    }
    std::printf("re-read %llu records, %llu verified as UDP — snaplen respected\n",
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(udp));
    return records == writer.records_written() ? 0 : 1;
}
