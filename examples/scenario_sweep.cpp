// Scenario-registry tour: run a registered figure through the parallel
// sweep executor and emit its JSON results document.
//
//   $ ./examples/scenario_sweep            # fig_6_3, 2 jobs
//   $ ./examples/scenario_sweep fig_6_7 4  # any registered id, any job count
//
// Every thesis figure lives as *data* in scenario::registry(); this shows
// the three-call flow the capbench_figures CLI is built on: look the
// scenario up, run it, serialize the result.
#include <cstdlib>
#include <iostream>

#include "capbench/core/capbench.hpp"
#include "capbench/report/writer.hpp"

int main(int argc, char** argv) {
    using namespace capbench;

    const std::string id = argc > 1 ? argv[1] : "fig_6_3";
    const int jobs = argc > 2 ? std::atoi(argv[2]) : 2;

    const scenario::Scenario* figure = scenario::find_scenario(id);
    if (figure == nullptr) {
        std::cerr << "unknown scenario '" << id << "' — pick one of:\n"
                  << scenario::list_text();
        return 2;
    }

    scenario::RunOptions options;
    options.jobs = jobs;                 // points are independent: any job
    options.packets = 20'000;            // count gives bit-identical results
    options.out = &std::cout;            // tables as they complete

    const scenario::ScenarioResult result = scenario::run_scenario(*figure, options);

    std::cout << "\n--- JSON document (" << report::JsonWriter::kSchema << ") ---\n"
              << report::JsonWriter::serialize(report::JsonWriter::document(result));
    return 0;
}
