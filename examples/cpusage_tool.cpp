// cpusage + trimusage (Chapter 5 / Appendix A.3-A.4): profile a sniffer
// during a capture run with half-second CPU-state samples and the
// longest-busy-interval averaging of the original awk script.
//
//   $ ./examples/cpusage_tool [rate_mbps] [-o]
//
// -o prints the machine-readable colon-separated format.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "capbench/core/capbench.hpp"

int main(int argc, char** argv) {
    using namespace capbench;
    using namespace capbench::harness;

    double rate = 700.0;
    bool machine_readable = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-o") == 0)
            machine_readable = true;
        else
            rate = std::atof(argv[i]);
    }

    TestbedConfig tb;
    tb.gen.count = 300'000;
    tb.gen.rate_mbps = rate;
    tb.gen.size_dist.emplace(dist::mwn_trace_histogram());
    tb.gen.use_dist = true;
    auto sut = standard_sut("moorhen");
    sut.buffer_bytes = 10ull << 20;
    tb.suts.push_back(std::move(sut));

    Testbed bed{std::move(tb)};
    bed.start_suts();
    profiling::CpuSage profiler{bed.suts()[0]->machine()};
    profiler.start();

    bool done = false;
    // Idle lead-in and tail so trimusage has something to trim.
    bed.generator().start(sim::SimTime{} + sim::seconds(1), [&] { done = true; });
    while (!done) bed.sim().run(bed.sim().now() + sim::seconds(1));
    bed.sim().run(bed.sim().now() + sim::seconds(1));
    profiler.stop();
    bed.sim().run(bed.sim().now() + sim::seconds(1));

    std::printf("cpusage samples (0.5 s interval) for moorhen at %.0f Mbit/s:\n", rate);
    profiler.print(std::cout, machine_readable);

    const auto trimmed = profiling::trim_usage(profiler.samples(), 95.0);
    if (trimmed) {
        std::printf("\ntrimusage (longest run with idle < 95%%): %zu samples from #%zu\n",
                    trimmed->run_length, trimmed->run_start);
        std::printf("  user %.1f%%  system %.1f%%  interrupt %.1f%%  idle %.1f%%\n",
                    trimmed->average.user_pct, trimmed->average.system_pct,
                    trimmed->average.interrupt_pct, trimmed->average.idle_pct);
    } else {
        std::puts("\ntrimusage: no sample below the idle limit (machine never got busy)");
    }
    return 0;
}
