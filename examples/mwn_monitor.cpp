// The production deployment of Section 2.3 / Figure 2.3: the four sniffers
// on the MWN uplink, each running a monitoring application — a filtered
// capture that writes packet headers to disk (the Bro + "time machine"
// style workload).
//
// The uplink traffic is not a constant-rate test stream: this example
// drives the generator with a self-similar day profile (Pareto on/off
// bursts around a diurnal mean, Section 2.5) and reports how much each
// sniffer would lose in production.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "capbench/core/capbench.hpp"

namespace {

using namespace capbench;

/// Piecewise generation: alternates Pareto-distributed burst and idle
/// periods; burst rates swing around the diurnal mean of the MWN uplink
/// (~220 Mbit/s off-peak to ~800+ Mbit/s peaks).
struct BurstPlan {
    double rate_mbps;
    std::uint64_t packets;
};

std::vector<BurstPlan> make_day_profile(sim::Rng& rng, std::uint64_t total_packets) {
    std::vector<BurstPlan> plan;
    std::uint64_t remaining = total_packets;
    double phase = 0.0;
    while (remaining > 0) {
        // Diurnal swing plus heavy-tailed burst factor.
        const double diurnal = 450.0 + 350.0 * std::sin(phase);
        const double burst = std::min(rng.next_pareto(1.6, 0.55), 2.2);
        const double rate = std::min(950.0, std::max(80.0, diurnal * burst));
        const auto chunk = std::min<std::uint64_t>(
            remaining, 2'000 + rng.next_below(8'000));
        plan.push_back(BurstPlan{rate, chunk});
        remaining -= chunk;
        phase += 0.35;
    }
    return plan;
}

}  // namespace

int main() {
    using namespace capbench::harness;

    std::puts("MWN uplink monitoring scenario (Figure 2.3): bursty self-similar traffic,");
    std::puts("IP-only filter, 76-byte header trace to disk on every sniffer.\n");

    std::vector<SutConfig> suts = standard_suts();
    apply_increased_buffers(suts);
    for (auto& sut : suts) {
        sut.filter_expression = "ip";          // the monitors only record IP traffic
        sut.app_load.disk_bytes_per_packet = 76;  // time-machine style header trace
    }

    // One aggregated result over the day profile segments.
    sim::Rng rng{2005};
    const auto profile = make_day_profile(rng, 400'000);
    std::printf("day profile: %zu burst segments, 400k packets total\n\n", profile.size());

    struct Tally {
        std::uint64_t delivered = 0;
        double cpu_sum = 0.0;
    };
    std::vector<Tally> tallies(suts.size());
    std::uint64_t generated = 0;
    double peak_rate = 0.0;

    for (const auto& segment : profile) {
        RunConfig run;
        run.packets = segment.packets;
        run.rate_mbps = segment.rate_mbps;
        run.full_bytes = true;  // the filter inspects real bytes
        run.seed = 7 + generated;
        const RunResult r = run_once(suts, run);
        generated += r.generated;
        peak_rate = std::max(peak_rate, r.offered_mbps);
        for (std::size_t i = 0; i < r.suts.size(); ++i) {
            tallies[i].delivered += static_cast<std::uint64_t>(
                r.suts[i].capture_avg_pct / 100.0 * static_cast<double>(r.generated));
            tallies[i].cpu_sum += r.suts[i].cpu_pct * static_cast<double>(r.generated);
        }
    }

    std::printf("generated %llu packets, peak segment rate %.0f Mbit/s\n\n",
                static_cast<unsigned long long>(generated), peak_rate);
    Table table{{"sniffer", "captured %", "avg CPU %"}};
    for (std::size_t i = 0; i < suts.size(); ++i) {
        const double pct =
            100.0 * static_cast<double>(tallies[i].delivered) / static_cast<double>(generated);
        table.add_row({suts[i].name, format_pct(pct),
                       format_pct(tallies[i].cpu_sum / static_cast<double>(generated))});
    }
    table.print(std::cout);
    std::puts("\nSelf-similarity means every buffer eventually meets a burst that fills it");
    std::puts("(Section 2.5) — which is why the thesis measures sustained capture rates.");
    return 0;
}
