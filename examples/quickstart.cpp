// Quickstart: build the Figure 3.1 testbed, generate 100,000 packets of
// MWN-shaped traffic at 600 Mbit/s, and compare the four sniffers.
//
//   $ ./examples/quickstart
//
// This is the whole public-API flow in ~40 lines: pick systems under test,
// configure a run, execute the measurement cycle, read the results.
#include <cstdio>
#include <iostream>

#include "capbench/core/capbench.hpp"

int main() {
    using namespace capbench;
    using namespace capbench::harness;

    // The four sniffers of the thesis (Figure 2.4), with the increased
    // buffers of Section 6.3.1.
    std::vector<SutConfig> suts = standard_suts();
    apply_increased_buffers(suts);

    RunConfig run;
    run.packets = 100'000;
    run.rate_mbps = 600.0;

    std::puts("capbench quickstart: 100k packets of MWN-shaped traffic at 600 Mbit/s\n");
    print_sut_inventory(std::cout, suts);

    const RunResult result = run_once(suts, run);

    std::printf("\ngenerated %llu packets, offered %.1f Mbit/s\n\n",
                static_cast<unsigned long long>(result.generated), result.offered_mbps);
    Table table{{"system", "captured %", "CPU %", "NIC drops", "buffer drops"}};
    for (const auto& sut : result.suts) {
        table.add_row({sut.name, format_pct(sut.capture_avg_pct), format_pct(sut.cpu_pct),
                       std::to_string(sut.nic_ring_drops), std::to_string(sut.buffer_drops)});
    }
    table.print(std::cout);
    std::puts("\nTry: raise run.rate_mbps to 950, set suts[i].cores = 1, add a filter\n"
              "expression, or attach per-packet loads (see bench/ for every figure).");
    return 0;
}
