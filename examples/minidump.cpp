// minidump: a small tcpdump — reads a pcap file, applies a capbench-
// compiled BPF filter, and prints one line per matching packet.
//
//   $ ./examples/minidump file.pcap ['filter expression'] [-c N] [-d]
//
//   -c N   stop after N matching packets
//   -d     dump the compiled BPF program instead of reading packets
//
// Pairs with examples/capture_to_pcap, which produces input files:
//   $ ./examples/capture_to_pcap /tmp/h.pcap
//   $ ./examples/minidump /tmp/h.pcap 'udp and dst host 192.168.10.12' -c 5
#include <cstdio>
#include <cstring>
#include <fstream>

#include "capbench/core/capbench.hpp"

namespace {

using namespace capbench;

void print_packet(const pcap::Record& rec) {
    const double ts = rec.timestamp.seconds();
    if (rec.data.size() < net::kEthernetHeaderLen) {
        std::printf("%.6f [truncated ethernet] caplen %u wire %u\n", ts, rec.caplen,
                    rec.wire_len);
        return;
    }
    const auto eth = net::EthernetHeader::decode(rec.data);
    if (eth.ether_type != net::kEtherTypeIpv4 ||
        rec.data.size() < net::kEthernetHeaderLen + net::kIpv4MinHeaderLen) {
        std::printf("%.6f %s > %s ethertype 0x%04x length %u\n", ts,
                    eth.src.to_string().c_str(), eth.dst.to_string().c_str(), eth.ether_type,
                    rec.wire_len);
        return;
    }
    const auto ip =
        net::Ipv4Header::decode(std::span{rec.data}.subspan(net::kEthernetHeaderLen));
    std::string proto = "proto-" + std::to_string(ip.protocol);
    if (ip.protocol == net::kIpProtoUdp) proto = "UDP";
    if (ip.protocol == net::kIpProtoTcp) proto = "TCP";
    if (ip.protocol == net::kIpProtoIcmp) proto = "ICMP";
    std::string ports;
    const std::size_t l4 = net::kEthernetHeaderLen + net::kIpv4MinHeaderLen;
    if ((ip.protocol == net::kIpProtoUdp || ip.protocol == net::kIpProtoTcp) &&
        rec.data.size() >= l4 + 4 && ip.fragment_offset() == 0) {
        ports = "." + std::to_string(net::load_be16(rec.data, l4)) + " > " +
                ip.dst.to_string() + "." + std::to_string(net::load_be16(rec.data, l4 + 2));
        std::printf("%.6f IP %s%s: %s, length %u\n", ts, ip.src.to_string().c_str(),
                    ports.c_str(), proto.c_str(), ip.total_length);
        return;
    }
    std::printf("%.6f IP %s > %s: %s, length %u\n", ts, ip.src.to_string().c_str(),
                ip.dst.to_string().c_str(), proto.c_str(), ip.total_length);
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: minidump FILE.pcap ['filter expression'] [-c N] [-d]\n");
        return 2;
    }
    const std::string path = argv[1];
    std::string expression;
    std::uint64_t max_count = 0;
    bool dump_program = false;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "-c") == 0 && i + 1 < argc) {
            max_count = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "-d") == 0) {
            dump_program = true;
        } else {
            expression = argv[i];
        }
    }

    bpf::Program prog;
    try {
        prog = bpf::filter::compile_filter(expression, 65535);
    } catch (const bpf::filter::FilterError& e) {
        std::fprintf(stderr, "minidump: %s\n", e.what());
        return 1;
    }
    if (dump_program) {
        std::fputs(bpf::disassemble(prog).c_str(), stdout);
        return 0;
    }

    std::ifstream in{path, std::ios::binary};
    if (!in) {
        std::fprintf(stderr, "minidump: cannot open %s\n", path.c_str());
        return 1;
    }
    try {
        pcap::FileReader reader{in};
        std::uint64_t seen = 0;
        std::uint64_t matched = 0;
        while (const auto rec = reader.next()) {
            ++seen;
            if (bpf::Vm::run(prog, rec->data, rec->wire_len).accept_len == 0) continue;
            ++matched;
            print_packet(*rec);
            if (max_count > 0 && matched >= max_count) break;
        }
        std::fprintf(stderr, "%llu packets read, %llu matched\n",
                     static_cast<unsigned long long>(seen),
                     static_cast<unsigned long long>(matched));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "minidump: %s\n", e.what());
        return 1;
    }
    return 0;
}
