// createDist (Appendix A.1): converts between packet-size representations
// and produces input for the enhanced Linux Kernel Packet Generator.
//
//   createdist_tool [options]
//     -I sizes|dist|trace|live|procfs  input type (default: dist)
//                             trace = pcap file; live = capture the sizes
//                             from a simulated testbed session (the
//                             original tool's live mode needed root)
//     -O sizes|dist|procfs    output type (default: procfs)
//     -i FILE                 read from FILE instead of stdin
//     -o FILE                 write to FILE instead of stdout
//     -fs CHAR                field separator for dist files (default: space)
//     -n N                    sizes to generate when -O sizes (default: 10000000)
//     -max N                  maximum packet size N_ps (default: 1500)
//     -prec N                 array precision rho (default: 1000)
//     -hwidth N               bin width sigma_bin (default: 20)
//     -outlb F                outlier bound p_Omega (default: 0.0020)
//     -s                      wrap procfs output in pgset "..."
//     -builtin                use the built-in MWN distribution as input
//     -v                      verbose statistics on stderr
//
// Example — produce the generator commands for the MWN workload:
//   $ ./examples/createdist_tool -builtin -s
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "capbench/core/capbench.hpp"

namespace {

using namespace capbench;

[[noreturn]] void usage(const char* reason) {
    std::fprintf(stderr, "createdist_tool: %s (see the header comment for options)\n", reason);
    std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
    std::string in_type = "dist";
    std::string out_type = "procfs";
    std::string in_file;
    std::string out_file;
    char field_sep = ' ';
    std::uint64_t n_sizes = 10'000'000;
    bool pgset_wrapped = false;
    bool use_builtin = false;
    bool verbose = false;
    dist::TwoStageParams params;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
            return argv[++i];
        };
        if (arg == "-I") in_type = next();
        else if (arg == "-O") out_type = next();
        else if (arg == "-i") in_file = next();
        else if (arg == "-o") out_file = next();
        else if (arg == "-fs") field_sep = next()[0];
        else if (arg == "-n") n_sizes = std::stoull(next());
        else if (arg == "-max") params.max_size = static_cast<std::uint32_t>(std::stoul(next()));
        else if (arg == "-prec") params.precision = static_cast<std::uint32_t>(std::stoul(next()));
        else if (arg == "-hwidth") params.bin_size = static_cast<std::uint32_t>(std::stoul(next()));
        else if (arg == "-outlb") params.outlier_bound = std::stod(next());
        else if (arg == "-s") pgset_wrapped = true;
        else if (arg == "-builtin") use_builtin = true;
        else if (arg == "-v") verbose = true;
        else if (arg == "-h" || arg == "--help") usage("help requested");
        else usage(("unknown option " + arg).c_str());
    }

    std::ifstream in_stream;
    std::istream* in = &std::cin;
    if (!in_file.empty()) {
        in_stream.open(in_file);
        if (!in_stream) usage(("cannot open " + in_file).c_str());
        in = &in_stream;
    }
    std::ofstream out_stream;
    std::ostream* out = &std::cout;
    if (!out_file.empty()) {
        out_stream.open(out_file);
        if (!out_stream) usage(("cannot create " + out_file).c_str());
        out = &out_stream;
    }

    try {
        // Acquire the histogram (or the ready-made two-stage distribution).
        dist::SizeHistogram hist{params.max_size};
        std::optional<dist::TwoStageDist> two_stage;
        if (use_builtin) {
            hist = dist::mwn_trace_histogram();
        } else if (in_type == "sizes") {
            hist = dist::read_sizes(*in, params.max_size);
        } else if (in_type == "dist") {
            hist = dist::read_dist(*in, field_sep, params.max_size);
        } else if (in_type == "trace") {
            hist = dist::read_pcap_trace(*in, params.max_size);
        } else if (in_type == "live") {
            // "Live" capture: run a moorhen session against generated MWN
            // traffic and count the IP sizes the application receives.
            harness::TestbedConfig tb;
            tb.gen.count = 200'000;
            tb.gen.rate_mbps = 400.0;
            tb.gen.size_dist.emplace(dist::mwn_trace_histogram());
            tb.gen.use_dist = true;
            tb.suts.push_back(harness::standard_sut("moorhen"));
            harness::Testbed bed{std::move(tb)};
            bed.start_suts();
            dist::SizeHistogram live_hist{params.max_size};
            bed.suts()[0]->sessions()[0]->set_handler(
                [&](const net::PacketPtr& p, std::uint32_t) {
                    if (p->frame_len() >= net::kEthernetHeaderLen)
                        live_hist.add(p->frame_len() - net::kEthernetHeaderLen);
                });
            bool done = false;
            bed.generator().start(sim::SimTime{}, [&] { done = true; });
            while (!done) bed.sim().run(bed.sim().now() + sim::seconds(1));
            bed.sim().run(bed.sim().now() + sim::seconds(2));
            hist = live_hist;
        } else if (in_type == "procfs") {
            two_stage = dist::read_procfs(*in);
        } else {
            usage(("unsupported input type " + in_type).c_str());
        }

        if (verbose && hist.total() > 0) {
            std::fprintf(stderr, "packets: %llu  mean size: %.1f  top-20 share: %.1f%%\n",
                         static_cast<unsigned long long>(hist.total()), hist.mean(),
                         100.0 * hist.top_fraction(20));
        }

        if (out_type == "dist") {
            if (!hist.total()) usage("dist output requires sizes/dist input");
            dist::write_dist(*out, hist, field_sep);
        } else if (out_type == "procfs") {
            if (!two_stage) two_stage.emplace(hist, params);
            dist::write_procfs(*out, *two_stage, pgset_wrapped);
        } else if (out_type == "sizes") {
            if (!two_stage) two_stage.emplace(hist, params);
            sim::Rng rng{42};
            dist::write_sizes(*out, *two_stage, rng, n_sizes);
        } else {
            usage(("unsupported output type " + out_type).c_str());
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "createdist_tool: %s\n", e.what());
        return 1;
    }
    return 0;
}
