// Figure B.2 (appendix): 25 additional memcpy() operations per packet —
// the lighter variant of Figure 6.10.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    auto suts = standard_suts();
    apply_increased_buffers(suts);
    for (auto& sut : suts) sut.app_load.memcpy_count = 25;
    run_rate_figure_both_modes("fig_b_2", "25 packet copies per packet, increased buffers",
                               suts, default_run_config());
    return 0;
}
