// Thin shim kept for existing targets/workflows: the ablation_livelock experiment is
// data in the scenario registry (src/capbench/scenario/registry.cpp).
// Prefer `capbench_figures --run ablation_livelock` for job control and JSON output.
#include "capbench/scenario/runner.hpp"

int main() { return capbench::scenario::run_shim("ablation_livelock"); }
