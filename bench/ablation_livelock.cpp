// ABLATION: receive-interrupt moderation (Section 2.2.1).
//
// The thesis explains receive livelock: one interrupt per packet starves
// the packet-processing application.  Both 2005 OSes avoided it (NAPI /
// interrupt mitigation); this ablation turns the mitigation OFF to show
// the collapse the Mogul/Ramakrishnan mechanisms prevent.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    std::vector<SutConfig> suts;
    for (const auto* name : {"swan", "moorhen"}) {
        auto normal = standard_sut(name);
        normal.buffer_bytes = name[0] == 's' ? 128ull << 20 : 10ull << 20;
        auto livelock = normal;
        livelock.name = std::string(name) + "-noNAPI";
        livelock.nic.interrupt_moderation = false;
        suts.push_back(std::move(normal));
        suts.push_back(std::move(livelock));
    }
    // Receive livelock is a single-processor phenomenon: the interrupts and
    // the starved application compete for the same CPU (Section 2.2.1).
    apply_single_cpu(suts);
    run_rate_figure("ablation_livelock",
                    "interrupt moderation on vs. off (one interrupt per packet), single CPU",
                    suts, default_run_config());
    return 0;
}
