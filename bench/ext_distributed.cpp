// EXTENSION (Section 7.2 future work): "physically distributing the
// traffic over different machines for analysis".
//
// A round-robin distributor replaces the passive splitter: each packet
// goes to exactly ONE of four moorhen-class sniffers, dividing the
// per-machine load by four.  Aggregate capture on a 10-Gigabit link is
// compared against a single machine taking the whole stream.
#include "fig_common.hpp"

namespace {

double aggregate_capture_pct(const figbench::RunResult& r) {
    double sum = 0.0;
    for (const auto& s : r.suts) sum += s.capture_avg_pct;
    return std::min(sum, 100.0);
}

}  // namespace

int main() {
    using namespace figbench;
    RunConfig base = default_run_config();
    base.link_gbps = 10.0;

    std::vector<SutConfig> single{standard_sut("moorhen")};
    apply_increased_buffers(single);

    std::vector<SutConfig> fleet;
    for (int i = 0; i < 4; ++i) {
        auto sut = standard_sut("moorhen");
        sut.name = "moorhen" + std::to_string(i);
        sut.buffer_bytes = 10ull << 20;
        fleet.push_back(std::move(sut));
    }

    print_figure_banner(std::cout, "ext_distributed",
                        "aggregate capture on a 10-Gigabit link: one sniffer vs. four "
                        "behind a round-robin distributor (future work, Section 7.2)");
    Table table{{"Mbit/s", "1x moorhen %", "4x distributed %"}};
    for (double rate = 1000; rate <= 9000; rate += 1000) {
        RunConfig cfg = base;
        cfg.rate_mbps = rate;
        const auto alone = run_once(single, cfg);
        RunConfig dist_cfg = cfg;
        dist_cfg.distribute_round_robin = true;
        const auto fleet_result = run_once(fleet, dist_cfg);
        char x[16];
        std::snprintf(x, sizeof x, "%.0f", rate);
        table.add_row({x, format_pct(alone.suts[0].capture_avg_pct),
                       format_pct(aggregate_capture_pct(fleet_result))});
    }
    table.print(std::cout);
    std::cout << "\nDistribution multiplies the capture ceiling by the fan-out — the thesis's\n"
                 "proposed way of conquering bandwidths one machine cannot handle.\n";
    return 0;
}
