// Figure 6.6: impact of the 50-instruction BPF filter of Figure 6.5.
// The filter accepts every generated packet, but only after evaluating the
// whole chain; it is compiled by capbench's own filter compiler and
// interpreted by the BPF VM on real frame bytes.  Cost: almost negligible;
// Linux loses a few extra percent at the highest rates.
//
// Before the sweep, the bench compares the stock emitted program against
// the statically optimized one (bpf/analysis/optimize.hpp) on synthesized
// frames: same verdicts, far fewer executed instructions per packet.
#include "capbench/bpf/asm_text.hpp"
#include "capbench/pktgen/pktgen.hpp"
#include "fig_common.hpp"

namespace {

using namespace figbench;

/// A handful of generated frames of assorted sizes, as the testbed load.
std::vector<std::vector<std::byte>> sample_frames() {
    std::vector<std::vector<std::byte>> frames;
    for (const std::uint32_t size : {64u, 128u, 256u, 645u, 1024u, 1514u}) {
        sim::Simulator sim;
        net::Link link{sim};
        pktgen::GenConfig cfg;
        cfg.count = 1;
        cfg.packet_size = size;
        cfg.full_bytes = true;
        pktgen::Generator gen{sim, link, pktgen::GenNicModel::syskonnect(), std::move(cfg)};
        struct Sink : net::FrameSink {
            net::PacketPtr packet;
            void on_frame(const net::PacketPtr& p) override { packet = p; }
        } sink;
        link.attach(sink);
        gen.start(sim::SimTime{});
        sim.run();
        const auto bytes = sink.packet->bytes();
        frames.emplace_back(bytes.begin(), bytes.end());
    }
    return frames;
}

void print_optimizer_comparison(const std::string& expr) {
    const auto stock = bpf::filter::compile_filter(expr, 1515, {.optimize = false});
    bpf::analysis::OptimizeStats stats;
    const auto optimized = bpf::analysis::optimize(stock, &stats);

    double stock_insns = 0;
    double opt_insns = 0;
    std::size_t accepted = 0;
    const auto frames = sample_frames();
    for (const auto& frame : frames) {
        const auto before = bpf::Vm::run(stock, frame);
        const auto after = bpf::Vm::run(optimized, frame);
        stock_insns += before.insns_executed;
        opt_insns += after.insns_executed;
        if (after.accept_len > 0) ++accepted;
    }
    stock_insns /= static_cast<double>(frames.size());
    opt_insns /= static_cast<double>(frames.size());
    std::printf("Figure 6.5 filter: %zu BPF instructions as emitted, %zu after static\n"
                "optimization (%d rounds; tcpdump -O also reaches 50).  Mean executed\n"
                "instructions per generated frame: %.1f stock -> %.1f optimized,\n"
                "%zu/%zu frames accepted.\n\n",
                stats.insns_before, stats.insns_after, stats.rounds, stock_insns,
                opt_insns, accepted, frames.size());
}

}  // namespace

int main() {
    const std::string expr = fig_6_5_filter_expression();
    print_optimizer_comparison(expr);

    const auto prog = bpf::filter::compile_filter(expr, 1515);
    std::printf("The rate sweep below runs the optimized %zu-instruction program.\n",
                prog.size());

    auto suts = standard_suts();
    apply_increased_buffers(suts);
    for (auto& sut : suts) sut.filter_expression = expr;
    RunConfig base = default_run_config();
    base.full_bytes = true;  // the filter inspects real packet contents
    run_rate_figure_both_modes("fig_6_6", "50-instruction BPF filter, increased buffers",
                               suts, base);
    return 0;
}
