// Figure 6.6: impact of the 50-instruction BPF filter of Figure 6.5.
// The filter accepts every generated packet, but only after evaluating the
// whole chain; it is compiled by capbench's own filter compiler and
// interpreted by the BPF VM on real frame bytes.  Cost: almost negligible;
// Linux loses a few extra percent at the highest rates.
#include "capbench/bpf/asm_text.hpp"
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    const std::string expr = fig_6_5_filter_expression();
    const auto prog = bpf::filter::compile_filter(expr, 1515);
    std::printf("Figure 6.5 filter compiled to %zu BPF instructions "
                "(tcpdump -O compiles it to 50; capbench's optimizer is simpler).\n",
                prog.size());

    auto suts = standard_suts();
    apply_increased_buffers(suts);
    for (auto& sut : suts) sut.filter_expression = expr;
    RunConfig base = default_run_config();
    base.full_bytes = true;  // the filter inspects real packet contents
    run_rate_figure_both_modes("fig_6_6", "50-instruction BPF filter, increased buffers",
                               suts, base);
    return 0;
}
