// Thin shim kept for existing targets/workflows: the fig_6_6 experiment is
// data in the scenario registry (src/capbench/scenario/registry.cpp).
// Prefer `capbench_figures --run fig_6_6` for job control and JSON output.
#include "capbench/scenario/runner.hpp"

int main() { return capbench::scenario::run_shim("fig_6_6"); }
