// Figure 6.11: per-packet compression at level 3 (gzwrite analog via
// MiniDeflate's calibrated cost).  Compression is cycle-bound, so this is
// the one experiment where each Intel system beats the corresponding AMD
// system; FreeBSD still beats Linux in dual mode.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    std::printf("MiniDeflate cost: level 3 = %.1f cycles/byte, level 9 = %.1f cycles/byte\n",
                load::compression_cycles_per_byte(3), load::compression_cycles_per_byte(9));
    auto suts = standard_suts();
    apply_increased_buffers(suts);
    for (auto& sut : suts) sut.app_load.compress_level = 3;
    run_rate_figure_both_modes("fig_6_11", "zlib-level-3 compression per packet", suts,
                               default_run_config());
    return 0;
}
