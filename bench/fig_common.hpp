// Shared driver for the figure-reproduction benches.
//
// Every bench prints the thesis figure it regenerates as a text table:
// rows are the x-axis (data rate or buffer size), columns per SUT are the
// capture rate and CPU usage — the same series the linespoints plots of
// Chapter 6 show.  Scale knobs: CAPBENCH_PACKETS (packets per run,
// default 400,000 vs. the thesis's 1,000,000) and CAPBENCH_REPS
// (repetitions per point, default 1; the simulation is deterministic, so
// repetitions only vary the workload seed).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "capbench/core/capbench.hpp"

namespace figbench {

using namespace capbench;
using namespace capbench::harness;

inline RunConfig default_run_config() {
    RunConfig cfg;
    cfg.packets = packets_per_run();
    return cfg;
}

/// When CAPBENCH_GNUPLOT_DIR is set, every figure additionally writes
/// <dir>/<figure_id>.dat and a matching .gp script.
inline void maybe_export_gnuplot(const std::string& figure_id, const std::string& caption,
                                 const std::vector<SweepRow>& rows, bool multi_app) {
    const char* dir = std::getenv("CAPBENCH_GNUPLOT_DIR");
    if (dir == nullptr) return;
    const std::string base = std::string(dir) + "/" + figure_id;
    std::ofstream data{base + ".dat"};
    write_gnuplot_data(data, rows, multi_app);
    std::ofstream script{base + ".gp"};
    write_gnuplot_script(script, figure_id + ".dat", caption, rows);
    std::printf("(gnuplot data written to %s.dat / .gp)\n", base.c_str());
}

/// Runs a full data-rate sweep and prints it under the figure banner.
inline void run_rate_figure(const std::string& figure_id, const std::string& caption,
                            const std::vector<SutConfig>& suts, const RunConfig& base,
                            bool multi_app = false) {
    print_figure_banner(std::cout, figure_id, caption);
    const auto rows = rate_sweep(suts, base, default_rate_grid(), default_reps());
    print_sweep(std::cout, "Mbit/s", rows, multi_app);
    maybe_export_gnuplot(figure_id, caption, rows, multi_app);
}

/// Single-vs-dual processor variant (the (a)/(b) sub-figures).
inline void run_rate_figure_both_modes(const std::string& figure_id,
                                       const std::string& caption,
                                       std::vector<SutConfig> suts, const RunConfig& base,
                                       bool multi_app = false) {
    auto single = suts;
    apply_single_cpu(single);
    run_rate_figure(figure_id + "(a)", caption + " — single processor mode", single, base,
                    multi_app);
    run_rate_figure(figure_id + "(b)", caption + " — dual processor mode", suts, base,
                    multi_app);
}

}  // namespace figbench
