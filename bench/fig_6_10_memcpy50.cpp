// Figure 6.10: 50 additional memcpy() operations per packet (simulated
// analysis load).  Memory-bound: the Opterons win in single-processor
// mode; in dual mode both FreeBSD systems are a notch above Linux.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    auto suts = standard_suts();
    apply_increased_buffers(suts);
    for (auto& sut : suts) sut.app_load.memcpy_count = 50;
    run_rate_figure_both_modes("fig_6_10", "50 packet copies per packet, increased buffers",
                               suts, default_run_config());
    return 0;
}
