// Figure 6.13: maximum sequential write speed (bonnie++ analog) and the
// CPU usage while writing, per sniffer.  Reference lines: writing packets
// at line speed would need ~119 MB/s (no system reaches it); writing only
// 76-byte headers needs ~13.6 MB/s (every system manages that).
#include "fig_common.hpp"

namespace {

/// Bulk writer: keeps the disk queue full for one simulated second.
class BonnieWriter final : public figbench::hostsim::Thread {
public:
    BonnieWriter(figbench::load::DiskModel& disk, capbench::sim::SimTime stop)
        : Thread("bonnie"), disk_(&disk), stop_(stop) {}

    void main() override { write_loop(); }

    void write_loop() {
        using namespace capbench;
        if (machine().sim().now() >= stop_) return;
        constexpr std::uint64_t kChunk = 256 * 1024;
        exec(disk_->write_work(kChunk), hostsim::CpuState::kSystem, [this] {
            if (!disk_->write(256 * 1024, *this)) {
                block([this] { write_loop(); });
                return;
            }
            write_loop();
        });
    }

private:
    figbench::load::DiskModel* disk_;
    capbench::sim::SimTime stop_;
};

}  // namespace

int main() {
    using namespace figbench;
    print_figure_banner(std::cout, "fig_6_13",
                        "maximum disk write speed and CPU usage per system (bonnie++)");
    Table table{{"system", "write speed [MB/s]", "CPU usage %"}};
    for (const auto* name : {"swan", "snipe", "moorhen", "flamingo"}) {
        sim::Simulator sim;
        hostsim::Machine machine{
            sim, hostsim::MachineSpec{*standard_sut(name).arch, 2, false},
            standard_sut(name).os->sched};
        load::DiskModel disk{machine, load::disk_spec_for(name)};
        const auto stop = sim::SimTime{} + sim::seconds(1);
        auto writer = std::make_shared<BonnieWriter>(disk, stop);
        machine.spawn(writer);
        sim.run(stop);
        const double mb_per_s = static_cast<double>(disk.bytes_written()) / 1e6;
        const double cpu_pct = 100.0 * machine.total_busy().seconds() / 1.0 / 2.0;
        char speed[16];
        char cpu[16];
        std::snprintf(speed, sizeof speed, "%6.1f", mb_per_s);
        std::snprintf(cpu, sizeof cpu, "%5.1f", cpu_pct);
        table.add_row({name, speed, cpu});
    }
    table.print(std::cout);
    std::cout << "\nline speed (full packets):   ~119 MB/s  <- none reaches it\n"
              << "header trace (76 B/packet): ~13.6 MB/s  <- all manage it\n";
    return 0;
}
