// Figure 4.2: histogram of the most frequent packet sizes with the
// cumulative sum — the top 3 sizes exceed 55 % and the top 20 exceed 75 %.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    print_figure_banner(std::cout, "fig_4_2",
                        "Relative frequency of the top 20 packet sizes and their "
                        "cumulative share");

    const auto hist = dist::mwn_trace_histogram(1'000'000);
    Table table{{"rank", "size [bytes]", "share %", "cumulative %"}};
    double cumulative = 0.0;
    int rank = 1;
    for (const auto& [size, count] : hist.top_sizes(20)) {
        const double share =
            100.0 * static_cast<double>(count) / static_cast<double>(hist.total());
        cumulative += share;
        char share_s[16];
        char cum_s[16];
        std::snprintf(share_s, sizeof share_s, "%6.2f", share);
        std::snprintf(cum_s, sizeof cum_s, "%6.2f", cumulative);
        table.add_row({std::to_string(rank++), std::to_string(size), share_s, cum_s});
    }
    table.add_row({"rest", "-", "", ""});
    table.print(std::cout);
    std::printf("\ntop 3 share: %.1f %% (thesis: > 55 %%), top 20 share: %.1f %% (thesis: > 75 %%)\n",
                100.0 * hist.top_fraction(3), 100.0 * hist.top_fraction(20));
    return 0;
}
