// Figure 6.16: Hyperthreading on vs. off on the Intel Xeon systems (SMP).
// Neither a noticeable amelioration nor deterioration.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    std::vector<SutConfig> suts;
    for (const auto* name : {"snipe", "flamingo"}) {
        auto off = standard_sut(name);
        off.buffer_bytes = off.os->family == capture::OsFamily::kFreeBsd
                               ? 10ull * 1024 * 1024
                               : 128ull * 1024 * 1024;
        auto on = off;
        on.name = std::string(name) + "-HT";
        on.hyperthreading = true;
        suts.push_back(std::move(off));
        suts.push_back(std::move(on));
    }
    run_rate_figure("fig_6_16", "Hyperthreading on/off, Intel systems, SMP", suts,
                    default_run_config());
    return 0;
}
