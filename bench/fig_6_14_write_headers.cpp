// Figure 6.14: capture while writing the first 76 bytes of every packet
// to disk.  Cheap: FreeBSD dual-CPU shows no noticeable difference; the
// Linux systems lose ~10 % at the highest rates; single-CPU Opterons lose
// ~10 % at the top but stay ahead of the Intels.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    auto suts = standard_suts();
    apply_increased_buffers(suts);
    for (auto& sut : suts) sut.app_load.disk_bytes_per_packet = 76;
    run_rate_figure_both_modes("fig_6_14", "write first 76 bytes of every packet to disk",
                               suts, default_run_config());
    return 0;
}
