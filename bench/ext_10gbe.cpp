// EXTENSION (Section 7.2 future work): "the evaluation of 10 Gigabit
// Ethernet with respect to the possibility to capture packets in these
// environments.  The difficulty is the further increased maximum packet
// and data rate."
//
// Same four sniffers, ten times the wire: every commodity 2005 system is
// hopeless well before line rate — motivating the distribution approach
// of ext_distributed.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    auto suts = standard_suts();
    apply_increased_buffers(suts);
    RunConfig base = default_run_config();
    base.link_gbps = 10.0;
    print_figure_banner(std::cout, "ext_10gbe",
                        "capture rate on a 10-Gigabit link (future work, Section 7.2)");
    std::vector<double> rates;
    for (double r = 500; r <= 9500; r += 1000) rates.push_back(r);
    const auto rows = rate_sweep(suts, base, rates, default_reps());
    print_sweep(std::cout, "Mbit/s", rows);
    std::cout << "\nEven the best 2005 commodity system saturates near 1 Gbit/s of this load;\n"
                 "10GbE capture needs faster buses/disks or load distribution (Section 7.2).\n";
    return 0;
}
