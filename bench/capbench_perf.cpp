// capbench_perf: wall-clock performance of the simulator itself.
//
// The figure benches answer "what does the model predict?"; this binary
// answers "how fast does the simulator get there?".  It times three macro
// scenarios straight from the Chapter 6 set — the Figure 6.2 baseline
// (synthetic packets), the Figure 6.6 filter run (full frame bytes through
// the BPF VM) and the Figure 6.8 four-application run (scheduler heavy) —
// plus micro loops over the DES hot paths (event scheduling, event
// cancellation, dense concurrent timers, arena packet recycling).  Every
// event-queue-bound case runs under BOTH priority backends (`_heap` /
// `_wheel` name suffixes) for a head-to-head comparison in one document.
// Results go to stdout and, with --json, into a schema-stable
// capbench.perf.v1 document that CI and BENCH_*.json snapshots consume.
//
// Numbers are machine-dependent: compare only documents produced on the
// same host and build type (see EXPERIMENTS.md).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "capbench/bpf/decoded.hpp"
#include "capbench/capture/rss.hpp"
#include "capbench/bpf/filter/codegen.hpp"
#include "capbench/bpf/jit/jit_program.hpp"
#include "capbench/bpf/threaded_vm.hpp"
#include "capbench/bpf/verifier.hpp"
#include "capbench/bpf/vm.hpp"
#include "capbench/harness/experiment.hpp"
#include "capbench/harness/measurement.hpp"
#include "capbench/load/disk_writer.hpp"
#include "capbench/net/arena.hpp"
#include "capbench/net/link.hpp"
#include "capbench/obs/timeseries.hpp"
#include "capbench/obs/trace.hpp"
#include "capbench/pcap/file.hpp"
#include "capbench/pktgen/pktgen.hpp"
#include "capbench/report/json.hpp"
#include "capbench/report/perf.hpp"
#include "capbench/sim/simulator.hpp"

#ifndef CAPBENCH_BUILD_TYPE
#define CAPBENCH_BUILD_TYPE "unknown"
#endif

namespace {

using capbench::harness::RunConfig;
using capbench::harness::SutConfig;
using capbench::report::PerfCase;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

PerfCase run_macro(std::string name, const std::vector<SutConfig>& suts, const RunConfig& cfg) {
    const auto t0 = Clock::now();
    const capbench::harness::RunResult r = capbench::harness::run_once(suts, cfg);
    const double wall = seconds_since(t0);
    PerfCase c;
    c.name = std::move(name);
    c.kind = "macro";
    c.wall_seconds = wall;
    c.events = r.events_executed;
    c.sim_packets = r.generated;
    c.events_per_sec = wall > 0 ? static_cast<double>(r.events_executed) / wall : 0.0;
    c.packets_per_sec = wall > 0 ? static_cast<double>(r.generated) / wall : 0.0;
    return c;
}

PerfCase micro_case(std::string name, std::uint64_t iters, double wall) {
    PerfCase c;
    c.name = std::move(name);
    c.kind = "micro";
    c.wall_seconds = wall;
    c.events = iters;
    c.events_per_sec = wall > 0 ? static_cast<double>(iters) / wall : 0.0;
    return c;
}

/// Self-rescheduling event: the steady-state shape of the DES hot loop
/// (pop one event, push one event).  16 bytes, stored inline.
struct ChainEvent {
    capbench::sim::Simulator* sim;
    std::uint64_t* remaining;

    void operator()() const {
        if (*remaining == 0) return;
        --*remaining;
        sim->schedule_in(capbench::sim::Duration{100}, ChainEvent{*this});
    }
};

std::string backend_suffix(capbench::sim::EventQueueBackend backend) {
    return std::string("_") + capbench::sim::to_string(backend);
}

PerfCase micro_event_loop(capbench::sim::EventQueueBackend backend, std::uint64_t iters) {
    capbench::sim::Simulator sim{backend};
    std::uint64_t remaining = iters;
    for (int chain = 0; chain < 8; ++chain)
        sim.schedule_in(capbench::sim::Duration{chain + 1}, ChainEvent{&sim, &remaining});
    const auto t0 = Clock::now();
    sim.run();
    return micro_case("event_queue_hot_loop" + backend_suffix(backend), iters,
                      seconds_since(t0));
}

PerfCase micro_cancel_churn(capbench::sim::EventQueueBackend backend, std::uint64_t iters) {
    capbench::sim::Simulator sim{backend};
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        // A timeout that never fires plus the event that beats it: the
        // pattern the machine model produces on every preempted chunk.
        auto doomed = sim.schedule_in(capbench::sim::Duration{1000}, [] {});
        sim.schedule_in(capbench::sim::Duration{10}, [] {});
        doomed.cancel();
        sim.step();
    }
    sim.run();
    return micro_case("event_cancel_churn" + backend_suffix(backend), iters,
                      seconds_since(t0));
}

/// A self-rescheduling timer with a fixed period — one of ~1k running
/// concurrently, the dense steady state where the O(1) wheel beats the
/// O(log n) heap.
struct DenseTimer {
    capbench::sim::Simulator* sim;
    std::uint64_t* remaining;
    std::int64_t period;

    void operator()() const {
        if (*remaining == 0) return;
        --*remaining;
        sim->schedule_in(capbench::sim::Duration{period}, DenseTimer{*this});
    }
};

PerfCase micro_dense_timer(capbench::sim::EventQueueBackend backend, std::uint64_t iters) {
    capbench::sim::Simulator sim{backend};
    constexpr int kTimers = 1024;
    std::uint64_t remaining = iters;
    for (int i = 0; i < kTimers; ++i) {
        // Coprime-ish periods spread firings across buckets instead of
        // phase-locking every timer onto the same tick.
        const std::int64_t period = 100 + 7 * (i % 97);
        sim.schedule_in(capbench::sim::Duration{period},
                        DenseTimer{&sim, &remaining, period});
    }
    const auto t0 = Clock::now();
    sim.run();
    return micro_case("dense_timer_steady" + backend_suffix(backend), iters,
                      seconds_since(t0));
}

/// Defeats constant propagation of a value so a branch on it is really
/// executed (the observability hooks are `if (trace_) ...` at every site;
/// this measures that branch, not dead code).
template <typename T>
void opaque(T& value) {
    asm volatile("" : "+r"(value));
}

/// The tracing fast path as seen from an instrumented call site: a null
/// check plus, when enabled, one slab push of a POD event.  `sink == null`
/// measures the disabled cost (what every figure run pays per hook when no
/// --trace is given); a live sink measures the enabled emit cost including
/// amortized chunk growth.
PerfCase micro_trace_hook(capbench::obs::TraceSink* sink, std::string name,
                          std::uint64_t iters) {
    const char* slice = sink != nullptr ? sink->intern("slice") : nullptr;
    const char* cat = sink != nullptr ? sink->intern("user") : nullptr;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        capbench::obs::TraceSink* t = sink;
        opaque(t);
        if (t != nullptr) {
            const auto start = capbench::sim::SimTime{static_cast<std::int64_t>(i) * 1000};
            t->complete(1, capbench::obs::kThreadTidBase, slice, cat, start,
                        start + capbench::sim::Duration{500});
        }
    }
    double wall = seconds_since(t0);
    opaque(wall);  // keep the empty-body disabled loop observable
    return micro_case(std::move(name), iters, wall);
}

/// The time-series sampler as seen from the measurement loop: when no
/// --timeseries sink is configured the per-site cost is one null check
/// (what every figure run pays), and when sampling is on the dominant
/// steady-state cost is one slab-chunked Series::push per sampled column,
/// including amortized chunk growth.
PerfCase micro_timeseries_tick(bool enabled, std::string name, std::uint64_t iters) {
    capbench::obs::Series series;
    capbench::obs::Series* live = enabled ? &series : nullptr;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        capbench::obs::Series* s = live;
        opaque(s);
        if (s != nullptr) s->push(static_cast<std::int64_t>(i & 1023));
    }
    double wall = seconds_since(t0);
    opaque(wall);  // keep the empty-body disabled loop observable
    return micro_case(std::move(name), iters, wall);
}

/// One full-bytes frame of the given size, synthesized by the generator
/// (the same packets the Figure 6.6 macro run filters).
std::vector<std::byte> synth_frame(std::uint32_t size) {
    capbench::sim::Simulator sim;
    capbench::net::Link link{sim};
    capbench::pktgen::GenConfig cfg;
    cfg.count = 1;
    cfg.packet_size = size;
    cfg.full_bytes = true;
    capbench::pktgen::Generator gen{sim, link, capbench::pktgen::GenNicModel::syskonnect(),
                                    std::move(cfg)};
    struct Sink : capbench::net::FrameSink {
        capbench::net::PacketPtr packet;
        void on_frame(const capbench::net::PacketPtr& p) override { packet = p; }
    } sink;
    link.attach(sink);
    gen.start(capbench::sim::SimTime{});
    sim.run();
    const auto bytes = sink.packet->bytes();
    return {bytes.begin(), bytes.end()};
}

/// The Figure 6.5 filter-cost micro, one case per execution tier: the
/// optimized 50-instruction program over a frame-size mix — interpreter
/// (`Vm`), verifier-backed token-threaded dispatch (`ThreadedVm` on the
/// pre-decoded program), and the native x86-64 tier (`JitProgram`).  All
/// tiers execute the same instruction stream, so the ratios isolate
/// dispatch + bounds-check-elision + codegen gains.
enum class FilterTier { kInterpreter, kThreaded, kJit };

PerfCase micro_filter_tier(FilterTier tier, std::uint64_t iters) {
    const auto prog = capbench::bpf::filter::compile_filter(
        capbench::harness::fig_6_5_filter_expression(), 1515);
    const auto verified = capbench::bpf::verify(prog);
    const auto decoded = capbench::bpf::decode(prog, verified.facts);
    const auto jitted = tier == FilterTier::kJit
                            ? capbench::bpf::JitProgram::compile(decoded)
                            : std::shared_ptr<const capbench::bpf::JitProgram>{};
    std::vector<std::vector<std::byte>> frames;
    for (const std::uint32_t size : {64u, 128u, 256u, 645u, 1024u, 1514u})
        frames.push_back(synth_frame(size));
    std::uint32_t sum = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        const auto& frame = frames[i % frames.size()];
        switch (tier) {
            case FilterTier::kInterpreter:
                sum += capbench::bpf::Vm::run(prog, frame).accept_len;
                break;
            case FilterTier::kThreaded:
                sum += capbench::bpf::ThreadedVm::run(decoded, frame).accept_len;
                break;
            case FilterTier::kJit:
                sum += jitted
                           ->run(frame, static_cast<std::uint32_t>(frame.size()))
                           .accept_len;
                break;
        }
    }
    const double wall = seconds_since(t0);
    opaque(sum);
    const char* name = tier == FilterTier::kInterpreter ? "filter_interpreter_fig65"
                       : tier == FilterTier::kThreaded  ? "filter_threaded_fig65"
                                                        : "filter_jit_fig65";
    return micro_case(name, iters, wall);
}

/// The per-packet RSS cost a multi-queue NIC pays: one Toeplitz 4-tuple
/// hash (96 input bits, bit-serial) per iteration over varying tuples.
PerfCase micro_rss_hash(std::uint64_t iters) {
    const auto& key = capbench::capture::rss::microsoft_key();
    std::uint32_t sum = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        const auto mix = static_cast<std::uint32_t>(i * 0x9E3779B1u);
        sum += capbench::capture::rss::hash_ipv4_ports(
            key, 0xc0a80000u | (mix & 0xffffu), 0x0a000000u | (mix >> 16),
            static_cast<std::uint16_t>(1024 + (i % 977)), 80);
    }
    const double wall = seconds_since(t0);
    opaque(sum);
    return micro_case("rss_toeplitz_hash", iters, wall);
}

PerfCase micro_arena_churn(std::uint64_t iters) {
    auto arena = capbench::net::PacketArena::create();
    // A sliding window of live packets, as the splitter and capture
    // buffers produce: every iteration allocates one packet and frees the
    // one from 64 iterations ago.
    std::vector<capbench::net::PacketPtr> window(64);
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        window[i % window.size()] =
            arena->make_full(i, 1500, capbench::sim::SimTime{});
    }
    const double wall = seconds_since(t0);
    return micro_case("arena_packet_churn", iters, wall);
}

/// Discards pcap bytes without buffering: isolates record formatting and
/// the ring hand-off from stream growth.
struct DevNullBuf final : std::streambuf {
    int_type overflow(int_type ch) override { return ch; }
    std::streamsize xsputn(const char*, std::streamsize n) override { return n; }
};

/// The capture-to-disk hot cycle: stage an arena-backed record, push it
/// through the bring ring in bursts of 32 (one writer batch), pop and
/// format it as a pcap record into a null sink.  Allocation-free in steady
/// state — this is the per-record cost the writer pipeline adds over the
/// inline model's plain accounting.
PerfCase micro_pcap_ring_handoff(std::uint64_t iters) {
    namespace load = capbench::load;
    auto arena = capbench::net::PacketArena::create();
    DevNullBuf buf;
    std::ostream out{&buf};
    capbench::pcap::FileWriter writer{out, 1515};
    load::BringRing ring{32};
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        ring.push(load::RecordRef{arena->make_full(i, 1500, capbench::sim::SimTime{}), 76,
                                  76, capbench::sim::SimTime{static_cast<std::int64_t>(i)}});
        if (ring.full()) {
            while (!ring.empty()) {
                const load::RecordRef rec = ring.pop();
                writer.write(*rec.packet, rec.caplen, rec.timestamp);
            }
        }
    }
    const double wall = seconds_since(t0);
    auto written = writer.records_written();
    opaque(written);
    return micro_case("pcap_ring_handoff", iters, wall);
}

void print_case(const PerfCase& c) {
    std::cout << "  " << c.name << " [" << c.kind << "]: " << c.wall_seconds << " s";
    if (c.sim_packets > 0) std::cout << ", " << c.packets_per_sec << " packets/s";
    std::cout << ", " << c.events_per_sec << " events/s\n";
}

int usage(int code) {
    std::cerr << "usage: capbench_perf [--quick] [--packets N] [--json <path>]\n"
                 "\n"
                 "  --quick        CI smoke sizing (~seconds instead of ~minutes)\n"
                 "  --packets N    packets per macro run (default 200000; quick 20000)\n"
                 "  --json <path>  write a capbench.perf.v1 document\n";
    return code;
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    std::uint64_t packets = 0;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--packets" && i + 1 < argc) {
            packets = std::stoull(argv[++i]);
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            return usage(0);
        } else {
            std::cerr << "capbench_perf: unknown argument '" << arg << "'\n";
            return usage(2);
        }
    }
    if (packets == 0) packets = quick ? 20'000 : 200'000;
    const std::uint64_t micro_iters = quick ? 200'000 : 2'000'000;

    capbench::report::PerfReport report;
    report.packets_per_macro_run = packets;
    report.seed = 1;
    report.quick = quick;
    report.build_type = CAPBENCH_BUILD_TYPE;

    RunConfig base;
    base.packets = packets;
    base.rate_mbps = 0.0;  // maximum speed: the most event-dense operating point
    base.seed = report.seed;

    std::cout << "capbench_perf (" << report.build_type << ", " << packets
              << " packets/macro run)\n";

    const capbench::sim::EventQueueBackend backends[] = {
        capbench::sim::EventQueueBackend::kHeap, capbench::sim::EventQueueBackend::kWheel};

    for (const auto backend : backends) {
        const std::string suffix = backend_suffix(backend);
        {
            // Figure 6.2 baseline: four SUTs, default buffers, synthetic packets.
            auto suts = capbench::harness::standard_suts();
            RunConfig cfg = base;
            cfg.event_queue = backend;
            report.cases.push_back(run_macro("fig_6_2_baseline" + suffix, suts, cfg));
            print_case(report.cases.back());
        }
        {
            // Figure 6.6: the 50-instruction filter over real frame bytes.
            auto suts = capbench::harness::standard_suts();
            capbench::harness::apply_increased_buffers(suts);
            for (auto& sut : suts)
                sut.filter_expression = capbench::harness::fig_6_5_filter_expression();
            RunConfig cfg = base;
            cfg.full_bytes = true;
            cfg.event_queue = backend;
            report.cases.push_back(run_macro("fig_6_6_filter" + suffix, suts, cfg));
            print_case(report.cases.back());
        }
        {
            // Figure 6.8: four capturing applications per SUT (scheduler heavy).
            auto suts = capbench::harness::standard_suts();
            capbench::harness::apply_increased_buffers(suts);
            for (auto& sut : suts) sut.app_count = 4;
            RunConfig cfg = base;
            cfg.event_queue = backend;
            report.cases.push_back(run_macro("fig_6_8_multiapp4" + suffix, suts, cfg));
            print_case(report.cases.back());
        }
        {
            // Multi-queue receive: one swan, four RSS queues on four cores,
            // 4096 flows through the indirection table (per-queue rings,
            // IRQ spreading and per-CPU kernel lanes all in play).
            std::vector<SutConfig> suts{capbench::harness::standard_sut("swan")};
            capbench::harness::apply_increased_buffers(suts);
            suts[0].cores = 4;
            suts[0].nic.queues = 4;
            RunConfig cfg = base;
            cfg.flow_count = 4096;
            cfg.event_queue = backend;
            report.cases.push_back(run_macro("multiqueue_dispatch" + suffix, suts, cfg));
            print_case(report.cases.back());
        }
        report.cases.push_back(micro_event_loop(backend, micro_iters));
        print_case(report.cases.back());
        report.cases.push_back(micro_cancel_churn(backend, micro_iters));
        print_case(report.cases.back());
        report.cases.push_back(micro_dense_timer(backend, micro_iters));
        print_case(report.cases.back());
    }

    report.cases.push_back(micro_arena_churn(micro_iters));
    print_case(report.cases.back());

    report.cases.push_back(micro_rss_hash(micro_iters));
    print_case(report.cases.back());

    report.cases.push_back(micro_pcap_ring_handoff(micro_iters));
    print_case(report.cases.back());

    report.cases.push_back(micro_filter_tier(FilterTier::kInterpreter, micro_iters));
    print_case(report.cases.back());
    report.cases.push_back(micro_filter_tier(FilterTier::kThreaded, micro_iters));
    print_case(report.cases.back());
    if (capbench::bpf::JitProgram::supported()) {
        report.cases.push_back(micro_filter_tier(FilterTier::kJit, micro_iters));
        print_case(report.cases.back());
    }

    report.cases.push_back(micro_trace_hook(nullptr, "trace_hook_disabled", micro_iters));
    print_case(report.cases.back());
    {
        capbench::obs::TraceSink sink;
        report.cases.push_back(micro_trace_hook(&sink, "trace_emit_enabled", micro_iters));
        print_case(report.cases.back());
    }

    report.cases.push_back(
        micro_timeseries_tick(false, "timeseries_tick_disabled", micro_iters));
    print_case(report.cases.back());
    report.cases.push_back(
        micro_timeseries_tick(true, "timeseries_tick_enabled", micro_iters));
    print_case(report.cases.back());

    const capbench::report::JsonValue doc = capbench::report::perf_document(report);
    const std::string text = capbench::report::dump_json(doc) + "\n";
    // Self-check: what we emit must round-trip and validate.
    capbench::report::validate_perf_document(capbench::report::parse_json(text));

    if (!json_path.empty()) {
        std::ofstream out(json_path, std::ios::binary);
        if (!out) {
            std::cerr << "capbench_perf: cannot write '" << json_path << "'\n";
            return 1;
        }
        out << text;
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
