// Figure 6.8: four capturing applications.  Linux passes its overload
// threshold and collapses (the skb-pool/reference-counting pathology);
// FreeBSD shares evenly and degrades gracefully.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    auto suts = standard_suts();
    apply_increased_buffers(suts);
    for (auto& sut : suts) sut.app_count = 4;
    run_rate_figure("fig_6_8", "4 capturing applications, SMP, increased buffers", suts,
                    default_run_config(), /*multi_app=*/true);
    return 0;
}
