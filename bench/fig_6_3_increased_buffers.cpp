// Figure 6.3: increased buffers (10 MB BPF double-buffer halves for
// FreeBSD, 128 MB socket buffers for Linux).  Linux's drop knee moves from
// ~225 to ~650-700 Mbit/s; single-CPU FreeBSD slightly deteriorates
// (whole-buffer copyout), dual-CPU FreeBSD improves.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    auto suts = standard_suts();
    apply_increased_buffers(suts);
    run_rate_figure_both_modes("fig_6_3", "increased buffers, 1 app, no filter, no load", suts,
                               default_run_config());
    return 0;
}
