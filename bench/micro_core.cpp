// Microbenchmarks (google-benchmark) for the performance-critical library
// pieces: the BPF VM, the filter compiler, two-stage distribution
// sampling, frame synthesis and MiniDeflate.
#include <benchmark/benchmark.h>

#include "capbench/bpf/filter/codegen.hpp"
#include "capbench/bpf/vm.hpp"
#include "capbench/dist/builtin.hpp"
#include "capbench/dist/two_stage_dist.hpp"
#include "capbench/harness/experiment.hpp"
#include "capbench/load/minideflate.hpp"
#include "capbench/net/link.hpp"
#include "capbench/pktgen/pktgen.hpp"

namespace {

using namespace capbench;

std::vector<std::byte> sample_frame() {
    sim::Simulator sim;
    net::Link link{sim};
    pktgen::GenConfig cfg;
    cfg.count = 1;
    cfg.packet_size = 645;
    cfg.full_bytes = true;
    pktgen::Generator gen{sim, link, pktgen::GenNicModel::syskonnect(), std::move(cfg)};
    struct Sink : net::FrameSink {
        net::PacketPtr packet;
        void on_frame(const net::PacketPtr& p) override { packet = p; }
    } sink;
    link.attach(sink);
    gen.start(sim::SimTime{});
    sim.run();
    const auto bytes = sink.packet->bytes();
    return {bytes.begin(), bytes.end()};
}

void BM_BpfVmFig65Filter(benchmark::State& state) {
    const auto prog = bpf::filter::compile_filter(harness::fig_6_5_filter_expression(), 1515);
    const auto frame = sample_frame();
    for (auto _ : state) {
        benchmark::DoNotOptimize(bpf::Vm::run(prog, frame));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BpfVmFig65Filter);

void BM_FilterCompileFig65(benchmark::State& state) {
    const auto expr = harness::fig_6_5_filter_expression();
    for (auto _ : state) {
        benchmark::DoNotOptimize(bpf::filter::compile_filter(expr, 1515));
    }
}
BENCHMARK(BM_FilterCompileFig65);

void BM_TwoStageSample(benchmark::State& state) {
    const dist::TwoStageDist d{dist::mwn_trace_histogram()};
    sim::Rng rng{42};
    for (auto _ : state) {
        benchmark::DoNotOptimize(d.sample(rng));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TwoStageSample);

void BM_PktgenFrameSynthesis(benchmark::State& state) {
    sim::Simulator sim;
    net::Link link{sim};
    pktgen::GenConfig cfg;
    cfg.count = 1'000'000'000;
    cfg.full_bytes = true;
    cfg.size_dist.emplace(dist::mwn_trace_histogram());
    cfg.use_dist = true;
    pktgen::Generator gen{sim, link, pktgen::GenNicModel::syskonnect(), std::move(cfg)};
    gen.start(sim::SimTime{});
    for (auto _ : state) {
        sim.step();  // one packet per event
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PktgenFrameSynthesis);

void BM_MiniDeflateLevel(benchmark::State& state) {
    const load::MiniDeflate codec{static_cast<int>(state.range(0))};
    std::vector<std::byte> packet(645);
    for (std::size_t i = 0; i < packet.size(); ++i)
        packet[i] = static_cast<std::byte>((i * 31) & 0xFF);
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec.compress(packet));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 645);
}
BENCHMARK(BM_MiniDeflateLevel)->Arg(1)->Arg(3)->Arg(9);

}  // namespace

BENCHMARK_MAIN();
