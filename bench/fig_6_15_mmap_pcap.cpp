// Figure 6.15: the memory-mapped libpcap (Phil Woods patch) on the Linux
// systems, against the stock PF_PACKET stack.  Removing the per-packet
// recvfrom() and the kernel-to-user copy eliminates nearly all drops.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    std::vector<SutConfig> suts;
    for (const auto* name : {"swan", "snipe"}) {
        auto stock = standard_sut(name);
        stock.buffer_bytes = 128ull * 1024 * 1024;
        auto mmap = stock;
        mmap.name = std::string(name) + "-mmap";
        mmap.stack = StackKind::kMmap;
        suts.push_back(std::move(stock));
        suts.push_back(std::move(mmap));
    }
    run_rate_figure_both_modes("fig_6_15", "mmap libpcap vs. stock, Linux systems", suts,
                               default_run_config());
    return 0;
}
