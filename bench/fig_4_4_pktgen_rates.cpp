// Section 4.3.1 / 4.1.3: achievable generation rates of the enhanced
// Linux Kernel Packet Generator, per transmit NIC and packet size.
// Anchors: 1500-byte packets reach ~938 Mbit/s on the Syskonnect card,
// ~930 on the Netgear, ~890 on the Intel.
#include "fig_common.hpp"

namespace {

double max_rate(const figbench::pktgen::GenNicModel& nic, std::uint32_t size) {
    using namespace figbench;
    sim::Simulator sim;
    net::Link link{sim};
    pktgen::GenConfig cfg;
    cfg.count = 5'000;
    cfg.packet_size = size;
    pktgen::Generator gen{sim, link, nic, std::move(cfg)};
    gen.start(sim::SimTime{});
    sim.run();
    return gen.stats().achieved_mbps();
}

double max_rate_dist(const figbench::pktgen::GenNicModel& nic) {
    using namespace figbench;
    sim::Simulator sim;
    net::Link link{sim};
    pktgen::GenConfig cfg;
    cfg.count = 50'000;
    cfg.size_dist.emplace(dist::mwn_trace_histogram());
    cfg.use_dist = true;
    pktgen::Generator gen{sim, link, nic, std::move(cfg)};
    gen.start(sim::SimTime{});
    sim.run();
    return gen.stats().achieved_mbps();
}

}  // namespace

int main() {
    using namespace figbench;
    print_figure_banner(std::cout, "fig_4_4",
                        "Maximum achievable data rate [Mbit/s] of the enhanced pktgen by "
                        "NIC and packet size (no inter-packet gap)");

    const auto nics = {pktgen::GenNicModel::syskonnect(), pktgen::GenNicModel::netgear(),
                       pktgen::GenNicModel::intel()};
    Table table{{"packet size [bytes]", "Syskonnect", "Netgear", "Intel"}};
    for (const std::uint32_t size : {64u, 128u, 256u, 512u, 1024u, 1500u}) {
        std::vector<std::string> row{std::to_string(size)};
        for (const auto& nic : nics) {
            char cell[16];
            std::snprintf(cell, sizeof cell, "%7.1f", max_rate(nic, size));
            row.emplace_back(cell);
        }
        table.add_row(std::move(row));
    }
    std::vector<std::string> dist_row{"MWN distribution"};
    for (const auto& nic : nics) {
        char cell[16];
        std::snprintf(cell, sizeof cell, "%7.1f", max_rate_dist(nic));
        dist_row.emplace_back(cell);
    }
    table.add_row(std::move(dist_row));
    table.print(std::cout);
    std::cout << "\n(thesis anchors @1500B: Syskonnect 938, Netgear 930, Intel 890 Mbit/s)\n";
    return 0;
}
