// capbench_figures — the data-driven figure runner.
//
// Replaces the per-figure main()s: every reproduced figure/table lives in
// the scenario registry (src/capbench/scenario/registry.cpp) and this one
// binary lists and runs them, fans sweep points out over worker threads,
// and emits the shared text/gnuplot/JSON reports.
//
//   capbench_figures --list
//   capbench_figures --run fig_6_2 fig_6_4 --jobs 8
//   capbench_figures --all --jobs 8 --json results.json --gnuplot plots/
//   capbench_figures --run fig_6_2 --trace=trace.json --metrics=metrics.json
//   capbench_figures --run ext_overload_pulse --trace=t.json --timeseries=ts.json
//
// Scale knobs: CAPBENCH_PACKETS, CAPBENCH_REPS, CAPBENCH_JOBS (the
// --jobs default), CAPBENCH_GNUPLOT_DIR (the --gnuplot default) and
// CAPBENCH_SAMPLE_INTERVAL (the --timeseries interval, microseconds).
// Results are bit-identical regardless of --jobs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "capbench/bpf/filter/codegen.hpp"
#include "capbench/bpf/verifier.hpp"
#include "capbench/obs/timeseries.hpp"
#include "capbench/obs/trace.hpp"
#include "capbench/report/metrics_writer.hpp"
#include "capbench/report/timeseries_writer.hpp"
#include "capbench/report/writer.hpp"
#include "capbench/scenario/runner.hpp"

namespace {

using namespace capbench;

constexpr const char* kUsage =
    "usage: capbench_figures [--list] [--run <id>...] [--all] [--jobs N]\n"
    "                        [--json <path>] [--gnuplot <dir>]\n"
    "                        [--metrics <path>] [--trace <path>]\n"
    "                        [--timeseries <path>] [--verify-filters]\n"
    "\n"
    "  --list          print every registered scenario id and caption\n"
    "  --verify-filters  run the BPF verifier over every filter program\n"
    "                  reachable from the scenario registry; exit nonzero on\n"
    "                  any error-severity finding\n"
    "  --run <id>...   run the named scenarios (ids as shown by --list)\n"
    "  --all           run every registered scenario\n"
    "  --jobs N        sweep-point worker threads (default: CAPBENCH_JOBS or 1);\n"
    "                  results are bit-identical regardless of N\n"
    "  --json <path>   write one capbench.figures.v1 suite document covering\n"
    "                  all scenarios run\n"
    "  --gnuplot <dir> write <id>.dat/.gp per figure (default: CAPBENCH_GNUPLOT_DIR)\n"
    "  --metrics <path> collect packet-lifecycle metrics for every sweep point\n"
    "                  and write one capbench.metrics-suite.v1 document\n"
    "  --trace <path>  write a Chrome trace-event JSON timeline (load in\n"
    "                  Perfetto / chrome://tracing) of one designated run:\n"
    "                  first selected sweep scenario, first variant, last\n"
    "                  sweep point, rep 0\n"
    "  --timeseries <path>  sample interval telemetry of the same designated\n"
    "                  run (every CAPBENCH_SAMPLE_INTERVAL microseconds of\n"
    "                  simulated time, default 1000) and write one\n"
    "                  capbench.timeseries.v1 document; with --gnuplot the\n"
    "                  occupancy/rate panels are exported too\n"
    "\n"
    "Flags taking a value also accept the --flag=value form.\n";

struct CliOptions {
    bool list = false;
    bool verify_filters = false;
    bool all = false;
    std::vector<std::string> ids;
    int jobs = 0;  // 0 = CAPBENCH_JOBS / 1
    std::string json_path;
    std::string gnuplot_dir;
    std::string metrics_path;
    std::string trace_path;
    std::string timeseries_path;
};

int parse_int_arg(const char* flag, const std::string& value) {
    std::size_t consumed = 0;
    int parsed = 0;
    try {
        parsed = std::stoi(value, &consumed);
    } catch (const std::exception&) {
        consumed = 0;
    }
    if (consumed != value.size() || parsed < 1)
        throw std::runtime_error(std::string(flag) + " expects a positive integer, got '" +
                                 value + "'");
    return parsed;
}

CliOptions parse_cli(int argc, char** argv) {
    CliOptions opts;
    bool collecting_ids = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // --flag=value form: split once so the dispatch below only ever
        // sees the bare flag; `next()` then consumes the inline value.
        std::string inline_value;
        bool has_inline_value = false;
        if (arg.rfind("--", 0) == 0) {
            const std::size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.resize(eq);
                has_inline_value = true;
            }
        }
        const auto next = [&](const char* flag) -> std::string {
            if (has_inline_value) return inline_value;
            if (i + 1 >= argc)
                throw std::runtime_error(std::string(flag) + " requires an argument");
            return argv[++i];
        };
        const auto no_value = [&](const char* flag) {
            if (has_inline_value)
                throw std::runtime_error(std::string(flag) + " does not take a value");
        };
        if (arg == "--list") {
            no_value("--list");
            opts.list = true;
            collecting_ids = false;
        } else if (arg == "--verify-filters") {
            no_value("--verify-filters");
            opts.verify_filters = true;
            collecting_ids = false;
        } else if (arg == "--all") {
            no_value("--all");
            opts.all = true;
            collecting_ids = false;
        } else if (arg == "--run") {
            no_value("--run");
            collecting_ids = true;
        } else if (arg == "--jobs") {
            opts.jobs = parse_int_arg("--jobs", next("--jobs"));
            collecting_ids = false;
        } else if (arg == "--json") {
            opts.json_path = next("--json");
            collecting_ids = false;
        } else if (arg == "--gnuplot") {
            opts.gnuplot_dir = next("--gnuplot");
            collecting_ids = false;
        } else if (arg == "--metrics") {
            opts.metrics_path = next("--metrics");
            collecting_ids = false;
        } else if (arg == "--trace") {
            opts.trace_path = next("--trace");
            collecting_ids = false;
        } else if (arg == "--timeseries") {
            opts.timeseries_path = next("--timeseries");
            collecting_ids = false;
        } else if (arg == "--help" || arg == "-h") {
            std::fputs(kUsage, stdout);
            std::exit(0);
        } else if (collecting_ids && arg.rfind("--", 0) != 0) {
            opts.ids.push_back(arg);
        } else {
            throw std::runtime_error("unknown argument '" + arg + "'");
        }
    }
    return opts;
}

/// The CI `bpf-verify` gate: every filter expression reachable from the
/// scenario registry (every variant's SUT roster), compiled in both its
/// stock and optimized form, must pass the verifier with no
/// error-severity finding.
int verify_registry_filters() {
    std::set<std::string> expressions;
    for (const auto& s : scenario::registry())
        for (const auto& v : s.variants)
            for (const auto& sut : v.suts())
                if (!sut.filter_expression.empty())
                    expressions.insert(sut.filter_expression);

    int errors = 0;
    std::size_t programs = 0;
    for (const std::string& expr : expressions) {
        for (const bool optimize : {false, true}) {
            const auto prog =
                bpf::filter::compile_filter(expr, 1515, {.optimize = optimize});
            const auto result = bpf::verify(prog);
            ++programs;
            std::printf("%s (%s, %zu insns): %zu finding(s)\n", expr.c_str(),
                        optimize ? "optimized" : "stock", prog.size(),
                        result.findings.size());
            for (const auto& f : result.findings)
                std::printf("  %s\n", bpf::analysis::to_string(f).c_str());
            if (!result.ok()) ++errors;
        }
    }
    std::printf("verified %zu program(s) from %zu registry expression(s): %d with "
                "errors\n",
                programs, expressions.size(), errors);
    return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    CliOptions cli;
    try {
        cli = parse_cli(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "capbench_figures: %s\n%s", e.what(), kUsage);
        return 2;
    }

    if (cli.list) {
        std::fputs(scenario::list_text().c_str(), stdout);
        return 0;
    }
    if (cli.verify_filters) {
        try {
            return verify_registry_filters();
        } catch (const std::exception& e) {
            std::fprintf(stderr, "capbench_figures: %s\n", e.what());
            return 1;
        }
    }
    if (!cli.all && cli.ids.empty()) {
        std::fputs(kUsage, stderr);
        return 2;
    }

    try {
        std::vector<const scenario::Scenario*> selected;
        if (cli.all) {
            for (const auto& s : scenario::registry()) selected.push_back(&s);
        } else {
            for (const auto& id : cli.ids) {
                const scenario::Scenario* s = scenario::find_scenario(id);
                if (s == nullptr)
                    throw std::runtime_error("unknown scenario '" + id +
                                             "' (see --list for the registered ids)");
                selected.push_back(s);
            }
        }

        scenario::RunOptions run_opts;
        run_opts.out = &std::cout;
        run_opts.jobs = cli.jobs != 0 ? cli.jobs : harness::default_jobs();
        run_opts.gnuplot_dir = cli.gnuplot_dir;
        run_opts.metrics = !cli.metrics_path.empty();

        obs::TraceSink trace_sink;
        bool trace_assigned = false;

        // The time-series interval: CAPBENCH_SAMPLE_INTERVAL (strictly
        // parsed microseconds) or 1 ms when --timeseries is given without
        // the variable.
        obs::TimeSeries timeseries;
        bool timeseries_assigned = false;
        std::string timeseries_id;
        sim::Duration sample_interval = harness::sample_interval_from_env();
        if (!cli.timeseries_path.empty() && sample_interval.ns() == 0)
            sample_interval = sim::milliseconds(1);

        std::vector<report::JsonValue> documents;
        std::vector<report::JsonValue> metric_docs;
        for (const scenario::Scenario* s : selected) {
            // The timeline and the time-series record one designated run;
            // both go to the first sweep scenario on the command line
            // (custom/table scenarios run no measurement).
            run_opts.trace = nullptr;
            run_opts.timeseries = nullptr;
            run_opts.sample_interval = sim::Duration::zero();
            if (!cli.trace_path.empty() && !trace_assigned && !s->is_custom()) {
                run_opts.trace = &trace_sink;
                trace_assigned = true;
            }
            if (!cli.timeseries_path.empty() && !timeseries_assigned && !s->is_custom()) {
                run_opts.timeseries = &timeseries;
                run_opts.sample_interval = sample_interval;
                timeseries_assigned = true;
                timeseries_id = s->id;
            }
            const scenario::ScenarioResult result = scenario::run_scenario(*s, run_opts);
            if (!cli.json_path.empty())
                documents.push_back(report::JsonWriter::document(result));
            if (!cli.metrics_path.empty())
                metric_docs.push_back(report::MetricsWriter::document(result));
        }

        if (!cli.json_path.empty()) {
            std::ofstream out{cli.json_path};
            out << report::JsonWriter::serialize(
                report::JsonWriter::suite(std::move(documents)));
            if (!out)
                throw std::runtime_error("cannot write JSON results to '" + cli.json_path +
                                         "'");
            std::printf("(JSON results written to %s)\n", cli.json_path.c_str());
        }
        if (!cli.metrics_path.empty()) {
            std::ofstream out{cli.metrics_path};
            out << report::MetricsWriter::serialize(report::MetricsWriter::suite(
                std::move(metric_docs),
                timeseries_assigned && timeseries.finalized ? &timeseries : nullptr));
            if (!out)
                throw std::runtime_error("cannot write metrics to '" + cli.metrics_path +
                                         "'");
            std::printf("(metrics written to %s)\n", cli.metrics_path.c_str());
        }
        if (!cli.trace_path.empty()) {
            if (!trace_assigned)
                throw std::runtime_error(
                    "--trace needs at least one sweep (non-table) scenario");
            std::ofstream out{cli.trace_path};
            trace_sink.write_chrome_json(out);
            if (!out)
                throw std::runtime_error("cannot write trace to '" + cli.trace_path + "'");
            std::printf("(trace written to %s — load in Perfetto or chrome://tracing)\n",
                        cli.trace_path.c_str());
        }
        if (!cli.timeseries_path.empty()) {
            if (!timeseries_assigned)
                throw std::runtime_error(
                    "--timeseries needs at least one sweep (non-table) scenario");
            std::ofstream out{cli.timeseries_path};
            out << report::TimeseriesWriter::serialize(
                report::TimeseriesWriter::document(timeseries, timeseries_id));
            if (!out)
                throw std::runtime_error("cannot write timeseries to '" +
                                         cli.timeseries_path + "'");
            std::printf("(timeseries written to %s)\n", cli.timeseries_path.c_str());
            std::string dir = cli.gnuplot_dir;
            if (dir.empty())
                if (const char* env = std::getenv("CAPBENCH_GNUPLOT_DIR")) dir = env;
            if (!dir.empty()) {
                report::write_timeseries_gnuplot(dir, timeseries_id, timeseries);
                std::printf("(timeseries gnuplot written to %s/%s_timeseries.dat / .gp)\n",
                            dir.c_str(), timeseries_id.c_str());
            }
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "capbench_figures: %s\n", e.what());
        return 1;
    }
}
