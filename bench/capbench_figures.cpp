// capbench_figures — the data-driven figure runner.
//
// Replaces the per-figure main()s: every reproduced figure/table lives in
// the scenario registry (src/capbench/scenario/registry.cpp) and this one
// binary lists and runs them, fans sweep points out over worker threads,
// and emits the shared text/gnuplot/JSON reports.
//
//   capbench_figures --list
//   capbench_figures --run fig_6_2 fig_6_4 --jobs 8
//   capbench_figures --all --jobs 8 --json results.json --gnuplot plots/
//
// Scale knobs: CAPBENCH_PACKETS, CAPBENCH_REPS, CAPBENCH_JOBS (the
// --jobs default) and CAPBENCH_GNUPLOT_DIR (the --gnuplot default).
// Results are bit-identical regardless of --jobs.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "capbench/report/writer.hpp"
#include "capbench/scenario/runner.hpp"

namespace {

using namespace capbench;

constexpr const char* kUsage =
    "usage: capbench_figures [--list] [--run <id>...] [--all] [--jobs N]\n"
    "                        [--json <path>] [--gnuplot <dir>]\n"
    "\n"
    "  --list          print every registered scenario id and caption\n"
    "  --run <id>...   run the named scenarios (ids as shown by --list)\n"
    "  --all           run every registered scenario\n"
    "  --jobs N        sweep-point worker threads (default: CAPBENCH_JOBS or 1);\n"
    "                  results are bit-identical regardless of N\n"
    "  --json <path>   write one capbench.figures.v1 suite document covering\n"
    "                  all scenarios run\n"
    "  --gnuplot <dir> write <id>.dat/.gp per figure (default: CAPBENCH_GNUPLOT_DIR)\n";

struct CliOptions {
    bool list = false;
    bool all = false;
    std::vector<std::string> ids;
    int jobs = 0;  // 0 = CAPBENCH_JOBS / 1
    std::string json_path;
    std::string gnuplot_dir;
};

int parse_int_arg(const char* flag, const std::string& value) {
    std::size_t consumed = 0;
    int parsed = 0;
    try {
        parsed = std::stoi(value, &consumed);
    } catch (const std::exception&) {
        consumed = 0;
    }
    if (consumed != value.size() || parsed < 1)
        throw std::runtime_error(std::string(flag) + " expects a positive integer, got '" +
                                 value + "'");
    return parsed;
}

CliOptions parse_cli(int argc, char** argv) {
    CliOptions opts;
    bool collecting_ids = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&](const char* flag) -> std::string {
            if (i + 1 >= argc)
                throw std::runtime_error(std::string(flag) + " requires an argument");
            return argv[++i];
        };
        if (arg == "--list") {
            opts.list = true;
            collecting_ids = false;
        } else if (arg == "--all") {
            opts.all = true;
            collecting_ids = false;
        } else if (arg == "--run") {
            collecting_ids = true;
        } else if (arg == "--jobs") {
            opts.jobs = parse_int_arg("--jobs", next("--jobs"));
            collecting_ids = false;
        } else if (arg == "--json") {
            opts.json_path = next("--json");
            collecting_ids = false;
        } else if (arg == "--gnuplot") {
            opts.gnuplot_dir = next("--gnuplot");
            collecting_ids = false;
        } else if (arg == "--help" || arg == "-h") {
            std::fputs(kUsage, stdout);
            std::exit(0);
        } else if (collecting_ids && arg.rfind("--", 0) != 0) {
            opts.ids.push_back(arg);
        } else {
            throw std::runtime_error("unknown argument '" + arg + "'");
        }
    }
    return opts;
}

}  // namespace

int main(int argc, char** argv) {
    CliOptions cli;
    try {
        cli = parse_cli(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "capbench_figures: %s\n%s", e.what(), kUsage);
        return 2;
    }

    if (cli.list) {
        std::fputs(scenario::list_text().c_str(), stdout);
        return 0;
    }
    if (!cli.all && cli.ids.empty()) {
        std::fputs(kUsage, stderr);
        return 2;
    }

    try {
        std::vector<const scenario::Scenario*> selected;
        if (cli.all) {
            for (const auto& s : scenario::registry()) selected.push_back(&s);
        } else {
            for (const auto& id : cli.ids) {
                const scenario::Scenario* s = scenario::find_scenario(id);
                if (s == nullptr)
                    throw std::runtime_error("unknown scenario '" + id +
                                             "' (see --list for the registered ids)");
                selected.push_back(s);
            }
        }

        scenario::RunOptions run_opts;
        run_opts.out = &std::cout;
        run_opts.jobs = cli.jobs != 0 ? cli.jobs : harness::default_jobs();
        run_opts.gnuplot_dir = cli.gnuplot_dir;

        std::vector<report::JsonValue> documents;
        for (const scenario::Scenario* s : selected) {
            const scenario::ScenarioResult result = scenario::run_scenario(*s, run_opts);
            if (!cli.json_path.empty())
                documents.push_back(report::JsonWriter::document(result));
        }

        if (!cli.json_path.empty()) {
            std::ofstream out{cli.json_path};
            out << report::JsonWriter::serialize(
                report::JsonWriter::suite(std::move(documents)));
            if (!out)
                throw std::runtime_error("cannot write JSON results to '" + cli.json_path +
                                         "'");
            std::printf("(JSON results written to %s)\n", cli.json_path.c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "capbench_figures: %s\n", e.what());
        return 1;
    }
}
