// Figure 6.9: eight capturing applications.  Linux captures nearly nothing
// past the threshold; FreeBSD still delivers relevant fractions to every
// application.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    auto suts = standard_suts();
    apply_increased_buffers(suts);
    for (auto& sut : suts) sut.app_count = 8;
    run_rate_figure("fig_6_9", "8 capturing applications, SMP, increased buffers", suts,
                    default_run_config(), /*multi_app=*/true);
    return 0;
}
