// Figure 4.1: scatterplot of the packet size distribution (counts per
// size, log scale in the thesis).  Printed here as a binned table plus the
// exact counts of the dominant sizes.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    print_figure_banner(std::cout, "fig_4_1",
                        "Packet size distribution of the (synthetic) 24h MWN trace; "
                        "most frequent sizes at 40, 52 and 1500 bytes");

    const auto hist = dist::mwn_trace_histogram(1'000'000);
    Table table{{"size range [bytes]", "packets", "share %"}};
    for (std::uint32_t base = 0; base <= 1500; base += 100) {
        std::uint64_t count = 0;
        for (std::uint32_t s = base; s < base + 100 && s <= 1500; ++s) count += hist.count(s);
        char range[32];
        std::snprintf(range, sizeof range, "%4u-%4u", base, std::min(base + 99, 1500u));
        char share[16];
        std::snprintf(share, sizeof share, "%6.2f",
                      100.0 * static_cast<double>(count) / static_cast<double>(hist.total()));
        table.add_row({range, std::to_string(count), share});
    }
    table.print(std::cout);

    std::cout << "\nDominant exact sizes:\n";
    Table peaks{{"size", "packets", "share %"}};
    for (const auto& [size, count] : hist.top_sizes(5)) {
        char share[16];
        std::snprintf(share, sizeof share, "%6.2f",
                      100.0 * static_cast<double>(count) / static_cast<double>(hist.total()));
        peaks.add_row({std::to_string(size), std::to_string(count), share});
    }
    peaks.print(std::cout);
    std::printf("\nmean packet size: %.1f bytes (Section 6.3.1 uses ~645)\n", hist.mean());
    return 0;
}
