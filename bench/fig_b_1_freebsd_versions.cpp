// Figure B.1 (appendix): FreeBSD 5.2.1 vs. 5.4 — the OS upgrade was
// "quite benefitting" (the Giant-locked 5.2.x kernel pays heavy locking
// costs on the capture path).
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    std::vector<SutConfig> suts;
    for (const auto* name : {"moorhen", "flamingo"}) {
        auto v54 = standard_sut(name);
        v54.buffer_bytes = 10ull * 1024 * 1024;
        auto v521 = v54;
        v521.name = std::string(name) + "-5.2.1";
        v521.os = &capture::OsSpec::freebsd_5_2_1();
        suts.push_back(std::move(v54));
        suts.push_back(std::move(v521));
    }
    run_rate_figure("fig_b_1", "FreeBSD 5.4 vs. 5.2.1, SMP, increased buffers", suts,
                    default_run_config());
    return 0;
}
