// Figure 6.2: baseline capture performance with OS-default buffer sizes.
// Linux starts dropping around ~225-300 Mbit/s (small rmem_default);
// FreeBSD holds up far longer.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    auto suts = standard_suts();
    std::cout << "Systems under test (Figure 2.4):\n";
    print_sut_inventory(std::cout, suts);
    run_rate_figure_both_modes("fig_6_2", "default buffers, 1 app, no filter, no load", suts,
                               default_run_config());
    return 0;
}
