// Figure B.3 (appendix): per-packet compression at level 9 — so expensive
// that every system drops nearly all packets under load.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    auto suts = standard_suts();
    apply_increased_buffers(suts);
    for (auto& sut : suts) sut.app_load.compress_level = 9;
    run_rate_figure("fig_b_3", "zlib-level-9 compression per packet, SMP", suts,
                    default_run_config());
    return 0;
}
