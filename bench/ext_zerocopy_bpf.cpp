// EXTENSION (Section 7.2 future work): "the implementation of a
// memory-mapped libpcap for FreeBSD as well.  Since FreeBSD seems to
// perform better than Linux in general, this could boost the capturing
// rates and reduce the CPU load."
//
// A shared ring replaces the STORE/HOLD double buffer and the whole-buffer
// copyout; the read syscall disappears.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    std::vector<SutConfig> suts;
    for (const auto* name : {"moorhen", "flamingo"}) {
        auto stock = standard_sut(name);
        stock.buffer_bytes = 10ull << 20;
        auto zc = stock;
        zc.name = std::string(name) + "-zc";
        zc.stack = StackKind::kZeroCopyBpf;
        suts.push_back(std::move(stock));
        suts.push_back(std::move(zc));
    }
    run_rate_figure_both_modes("ext_zerocopy_bpf",
                               "zero-copy (mmap) BPF vs. stock double buffer, FreeBSD",
                               suts, default_run_config());
    return 0;
}
