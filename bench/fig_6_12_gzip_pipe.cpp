// Figure 6.12: tcpdump piping whole packets to a separate gzip process
// (level 3) through a FIFO.  The pipeline spreads capture and compression
// over both CPUs; the systems converge and CPU usage rises.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    auto suts = standard_suts();
    apply_increased_buffers(suts);
    for (auto& sut : suts) {
        sut.app_load.pipe_to_gzip = true;
        sut.app_load.pipe_gzip_level = 3;
    }
    run_rate_figure("fig_6_12", "pipe whole packets to gzip -3, SMP", suts,
                    default_run_config());
    return 0;
}
