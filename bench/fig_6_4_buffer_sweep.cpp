// Figure 6.4: capture rate vs. buffer size at the highest possible data
// rate (no inter-packet gap).  Dual-CPU: no improvement beyond ~512 kB.
// Single-CPU: FreeBSD deteriorates at mid-to-large buffers (the cache-
// spilling whole-buffer copyout); very large buffers "capture" roughly
// their own content (the flamingo analysis of Section 6.3.1).
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    const std::vector<std::uint64_t> buffers_kb = {128,  256,   512,   1024,  2048,  4096,
                                                   8192, 16384, 32768, 65536, 131072, 262144};
    RunConfig base = default_run_config();
    const int reps = default_reps();

    auto dual = standard_suts();
    auto single = standard_suts();
    apply_single_cpu(single);

    print_figure_banner(std::cout, "fig_6_4(a)",
                        "capture rate vs. buffer size at maximum data rate — single "
                        "processor mode (buffer halved for FreeBSD's double buffer)");
    print_sweep(std::cout, "buffer kB", buffer_sweep(single, base, buffers_kb, reps));

    print_figure_banner(std::cout, "fig_6_4(b)",
                        "capture rate vs. buffer size at maximum data rate — dual "
                        "processor mode");
    print_sweep(std::cout, "buffer kB", buffer_sweep(dual, base, buffers_kb, reps));
    return 0;
}
