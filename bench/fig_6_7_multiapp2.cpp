// Figure 6.7: two capturing applications per sniffer (SMP).  Still
// acceptable on all systems; worst/avg/best per-application capture rates.
#include "fig_common.hpp"

int main() {
    using namespace figbench;
    auto suts = standard_suts();
    apply_increased_buffers(suts);
    for (auto& sut : suts) sut.app_count = 2;
    run_rate_figure("fig_6_7", "2 capturing applications, SMP, increased buffers", suts,
                    default_run_config(), /*multi_app=*/true);
    return 0;
}
