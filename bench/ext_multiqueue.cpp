// Thin shim kept for existing targets/workflows: the ext_multiqueue
// experiment is data in the scenario registry
// (src/capbench/scenario/registry.cpp).  Prefer `capbench_figures --run
// ext_multiqueue` for job control and JSON output.
#include "capbench/scenario/runner.hpp"

int main() { return capbench::scenario::run_shim("ext_multiqueue"); }
